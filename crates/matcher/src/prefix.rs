//! AllPairs/PPJoin-style prefix and size filtering for candidate generation.
//!
//! The unfiltered inverted-index join scans the **full** posting list of
//! every token a record holds — effectively quadratic on common tokens. The
//! (crate-internal) `PrefixIndex` built here indexes only a provably
//! sufficient *prefix* of each record, so a probing record discovers every
//! pair that can still clear the matcher's pruning floor while skipping the
//! bulk of the common-token cross products.
//!
//! # The filter-safety argument
//!
//! The matcher emits a candidate `(a, b)` when the records share ≥ 1 token
//! and their blended likelihood clears `min_likelihood`:
//!
//! ```text
//! likelihood = (wc·cos + wj·jac + Σᵢ wiᵢ·eᵢ) / W,   W = wc + wj + Σᵢ wiᵢ
//! ```
//!
//! with `cos`, `jac`, and every extra measure `eᵢ` in `[0, 1]`. Substituting
//! `eᵢ ≤ 1`, any qualifying pair satisfies `wc·cos + wj·jac ≥ S` where
//! `S = min_likelihood·W − Σᵢ wiᵢ`. A weighted average is at most its
//! maximum, so **every qualifying pair has `cos ≥ t` or `jac ≥ t`** for the
//! blended prefilter threshold
//!
//! ```text
//! t = S / (wc + wj)      (t ≤ min_likelihood ≤ 1)
//! ```
//!
//! Candidate generation therefore runs two prefix-filtered similarity joins
//! and unions their discoveries; each is individually lossless at
//! threshold `t`:
//!
//! * **Cosine join.** Record `b` stores its unit tf-idf vector sorted by
//!   descending weight and indexes the shortest prefix whose remaining tail
//!   has L2 norm `‖tail(b)‖ < t` (the tail norm is kept as
//!   `suffix_bound[b]`). For any probe `a` (also a unit vector),
//!   Cauchy–Schwarz bounds the tail's possible contribution:
//!   `Σ_{shared ∩ tail(b)} a_i·b_i ≤ ‖tail(b)‖ < t`. Hence if
//!   `cos(a, b) ≥ t`, the *indexed prefix* of `b` must contribute
//!   `cos − ‖tail(b)‖ > 0` — at least one shared token is indexed, and `a`
//!   (which probes with **all** of its tokens) touches `b`.
//! * **Jaccard join.** Record `b` orders its token set by ascending document
//!   frequency and indexes its first `|b| − ⌈t·|b|⌉ + 1` tokens. If
//!   `jac(a, b) ≥ t` then `|a ∩ b| ≥ t·|a ∪ b| ≥ t·|b|`, while the
//!   unindexed suffix only holds `⌈t·|b|⌉ − 1 < t·|b|` tokens — the shared
//!   tokens cannot all hide in the suffix, so `a` (probing with all of its
//!   tokens) touches `b` through an indexed one. This argument only uses the
//!   *size* of the prefix, so ordering by rarity is purely a performance
//!   choice: common tokens fall off the end of most prefixes and their
//!   posting lists collapse.
//!
//! A **size filter** rejects touched pairs before any exact scoring:
//! `jac(a, b) ≤ min(|a|,|b|) / max(|a|,|b|)`, and the cosine accumulated
//! over indexed postings bounds the true cosine by
//! `cos ≤ acc + suffix_bound[b]`. Both bounds feed the monotone blend
//! upper bound; a pair is skipped only when even the bound cannot reach
//! `min_likelihood`.
//!
//! One sign subtlety: sublinear tf damping (`1 + ln(tf)`) makes tokens of
//! fractionally-weighted fields carry *negative* vector components, so a
//! pair's dot product can be negative (the cosine clamps at 0). The
//! Cauchy–Schwarz tail bound is sign-free, so discovery is unaffected; the
//! verifier's accumulator-derived cosine bound clamps at 0 before it enters
//! the blend bound.
//!
//! Floating-point safety: the thresholds used to *cut* prefixes are slacked
//! by `1e-7` (`t_eff = t − 1e-7`, and `⌈(t − 1e-9)·|b|⌉` for the integer
//! prefix), and the accumulator-based cosine bound adds `1e-9` — orders of
//! magnitude above the worst-case rounding of these O(10)-term sums, so a
//! borderline pair is always *kept* and re-scored exactly, never dropped.
//!
//! Degenerate blends stay lossless: when `t ≤ 0` (the extra measures alone
//! can reach the floor, or `wc = wj = 0`) the Jaccard join indexes every
//! token of every record, which rediscovers exactly the classic "shares ≥ 1
//! token" join.

use crate::corpus::TokenizedCorpus;
use crate::tfidf::TfIdfIndex;

/// Slack subtracted from prefix-cut thresholds so float rounding can only
/// ever enlarge a prefix, never drop a qualifying pair.
pub(crate) const FILTER_SLACK: f64 = 1e-7;

/// Slack added to accumulator-derived cosine upper bounds.
pub(crate) const BOUND_SLACK: f64 = 1e-9;

/// Prefix-filtered posting lists for one candidate-generation run.
///
/// Only *index-side* records appear in the postings: for a cross join the B
/// side (ids `split..n`, probed by every A record), for a self join all
/// records (a probe `a` slices each list to entries with id `> a`, so every
/// unordered pair is generated exactly once, from its smaller endpoint).
#[derive(Debug)]
pub(crate) struct PrefixIndex {
    /// Whether the cosine join runs (`wc > 0` and `t > 0`).
    pub cos_active: bool,
    /// Token id → `(record, tf-idf weight)` for indexed prefix entries,
    /// ascending by record id.
    pub cos_postings: Vec<Vec<(u32, f32)>>,
    /// Per record: L2 norm of its *unindexed* vector tail (0 when the whole
    /// vector is indexed, in particular whenever the filter is inactive).
    pub cos_suffix_bound: Vec<f64>,
    /// Token id → record ids whose Jaccard prefix contains the token,
    /// ascending.
    pub jac_postings: Vec<Vec<u32>>,
    /// Per record: how many of its tokens are *not* indexed in
    /// `jac_postings`. A probe's per-token overlap counter plus this cut is
    /// an upper bound on the true intersection size; when the cut is 0 the
    /// counter is exact and the verifier skips the merge join entirely.
    pub jac_cut: Vec<u32>,
}

impl PrefixIndex {
    /// Builds prefix-filtered postings for `threshold = t` over the
    /// index-side records.
    ///
    /// `jac_weight_positive` / `cos_weight_positive` say which similarity
    /// actually carries blend weight; a zero-weight side cannot make a pair
    /// qualify on its own, so its join is skipped (unless `t ≤ 0`, where the
    /// full Jaccard join is kept as the lossless fallback).
    // The record id `b` indexes per-record arrays *and* drives corpus/index
    // lookups; an enumerate-skip chain would obscure that.
    #[allow(clippy::needless_range_loop)]
    pub fn build(
        corpus: &TokenizedCorpus,
        index: &TfIdfIndex,
        threshold: f64,
        cos_weight_positive: bool,
        jac_weight_positive: bool,
        split: Option<usize>,
    ) -> Self {
        let n = corpus.num_records();
        let vocab = corpus.vocabulary_size();
        let index_start = split.unwrap_or(0);
        let filtered = threshold > 0.0;
        let cos_active = filtered && cos_weight_positive;
        let jac_active = !filtered || jac_weight_positive;

        let mut cos_postings: Vec<Vec<(u32, f32)>> = vec![Vec::new(); vocab];
        let mut cos_suffix_bound: Vec<f64> = vec![0.0; n];
        if cos_active {
            let t_eff = threshold - FILTER_SLACK;
            let mut order: Vec<(u32, f32)> = Vec::new();
            let mut tails: Vec<f64> = Vec::new();
            for b in index_start..n {
                order.clear();
                order.extend_from_slice(index.vector(b as u32));
                // Heaviest tokens first (by magnitude — sublinear tf damping
                // can make fractionally-weighted components negative); ties
                // broken by id for determinism.
                order.sort_unstable_by(|x, y| {
                    y.1.abs().partial_cmp(&x.1.abs()).expect("finite weights").then(x.0.cmp(&y.0))
                });
                tails.clear();
                tails.resize(order.len() + 1, 0.0);
                for i in (0..order.len()).rev() {
                    tails[i] = tails[i + 1] + order[i].1 as f64 * order[i].1 as f64;
                }
                let prefix =
                    (0..=order.len()).find(|&p| tails[p].sqrt() < t_eff).unwrap_or(order.len());
                cos_suffix_bound[b] = tails[prefix].sqrt();
                for &(token, w) in &order[..prefix] {
                    cos_postings[token as usize].push((b as u32, w));
                }
            }
        }

        let mut jac_postings: Vec<Vec<u32>> = vec![Vec::new(); vocab];
        // Un-indexed records keep a cut of u32::MAX: their overlap counter
        // never bounds anything and never claims exactness.
        let mut jac_cut: Vec<u32> = vec![u32::MAX; n];
        if jac_active {
            let df = corpus.set_doc_freq();
            let mut order: Vec<u32> = Vec::new();
            for b in index_start..n {
                let set = corpus.token_set(b);
                if set.is_empty() {
                    continue;
                }
                let prefix = if filtered {
                    let required = ((threshold - BOUND_SLACK) * set.len() as f64).ceil() as usize;
                    if required < 1 {
                        set.len()
                    } else {
                        set.len() - required + 1
                    }
                } else {
                    set.len()
                };
                jac_cut[b] = (set.len() - prefix) as u32;
                order.clear();
                order.extend_from_slice(set);
                // Rarest first — correctness only needs the prefix *size*.
                order.sort_unstable_by_key(|&t| (df[t as usize], t));
                for &token in &order[..prefix] {
                    jac_postings[token as usize].push(b as u32);
                }
            }
        }

        Self { cos_active, cos_postings, cos_suffix_bound, jac_postings, jac_cut }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdjoin_records::{Dataset, Record, Schema, Table};

    fn dataset(names: &[&str]) -> Dataset {
        let mut table = Table::new(Schema::new(vec!["name"]));
        for n in names {
            table.push(Record::new(vec![*n]));
        }
        let n = table.len();
        Dataset { table, entity_of: (0..n as u32).collect(), split: None, name: "t".into() }
    }

    #[test]
    fn inactive_threshold_indexes_everything_via_jaccard() {
        let ds = dataset(&["sony tv", "sony camera"]);
        let corpus = TokenizedCorpus::build(&ds);
        let index = TfIdfIndex::from_corpus(&corpus, &[1.0]);
        let pf = PrefixIndex::build(&corpus, &index, 0.0, true, true, None);
        assert!(!pf.cos_active);
        let total: usize = pf.jac_postings.iter().map(Vec::len).sum();
        assert_eq!(total, 4, "every token of every record indexed");
    }

    #[test]
    fn high_threshold_shrinks_postings() {
        let ds = dataset(&[
            "tv common alpha",
            "tv common beta",
            "tv common gamma",
            "tv common delta",
            "tv common epsilon",
        ]);
        let corpus = TokenizedCorpus::build(&ds);
        let index = TfIdfIndex::from_corpus(&corpus, &[1.0]);
        let loose = PrefixIndex::build(&corpus, &index, 0.05, true, true, None);
        let tight = PrefixIndex::build(&corpus, &index, 0.9, true, true, None);
        let count = |pf: &PrefixIndex| pf.jac_postings.iter().map(Vec::len).sum::<usize>();
        assert!(count(&tight) < count(&loose), "tight {} loose {}", count(&tight), count(&loose));
        let cos_count = |pf: &PrefixIndex| pf.cos_postings.iter().map(Vec::len).sum::<usize>();
        assert!(cos_count(&tight) < cos_count(&loose));
        // The tight index leaves a positive tail bound on at least one record.
        assert!(tight.cos_suffix_bound.iter().any(|&b| b > 0.0));
    }

    #[test]
    fn cross_join_indexes_only_the_b_side() {
        let mut table = Table::new(Schema::new(vec!["name"]));
        for n in ["left one", "left two", "right one", "right two"] {
            table.push(Record::new(vec![n]));
        }
        let ds = Dataset { table, entity_of: vec![0, 1, 2, 3], split: Some(2), name: "t".into() };
        let corpus = TokenizedCorpus::build(&ds);
        let index = TfIdfIndex::from_corpus(&corpus, &[1.0]);
        let pf = PrefixIndex::build(&corpus, &index, 0.05, true, true, Some(2));
        for postings in &pf.jac_postings {
            assert!(postings.iter().all(|&r| r >= 2), "A-side record indexed: {postings:?}");
        }
        for postings in &pf.cos_postings {
            assert!(postings.iter().all(|&(r, _)| r >= 2));
        }
    }

    #[test]
    fn postings_ascend_by_record_id() {
        let ds = dataset(&["a b c", "a b d", "a c d", "b c d", "a b c d"]);
        let corpus = TokenizedCorpus::build(&ds);
        let index = TfIdfIndex::from_corpus(&corpus, &[1.0]);
        let pf = PrefixIndex::build(&corpus, &index, 0.3, true, true, None);
        for postings in &pf.jac_postings {
            assert!(postings.windows(2).all(|w| w[0] < w[1]), "{postings:?}");
        }
        for postings in &pf.cos_postings {
            assert!(postings.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }
}
