//! AllPairs/PPJoin-style prefix, positional, and length filtering for
//! candidate generation.
//!
//! The unfiltered inverted-index join scans the **full** posting list of
//! every token a record holds — effectively quadratic on common tokens. The
//! (crate-internal) `PrefixIndex` built here indexes only a provably
//! sufficient *prefix* of each record, so a probing record discovers every
//! pair that can still clear the matcher's pruning floor while skipping the
//! bulk of the common-token cross products. All posting lists live in
//! contiguous CSR arenas (one flat entry array per join plus a per-token
//! offset table) — a probe walks cache-line-dense slices instead of chasing
//! one heap allocation per token.
//!
//! # The filter-safety argument
//!
//! The matcher emits a candidate `(a, b)` when the records share ≥ 1 token
//! and their blended likelihood clears `min_likelihood`:
//!
//! ```text
//! likelihood = (wc·cos + wj·jac + Σᵢ wiᵢ·eᵢ) / W,   W = wc + wj + Σᵢ wiᵢ
//! ```
//!
//! with `cos`, `jac`, and every extra measure `eᵢ` in `[0, 1]`. Substituting
//! `eᵢ ≤ 1`, any qualifying pair satisfies `wc·cos + wj·jac ≥ S` where
//! `S = min_likelihood·W − Σᵢ wiᵢ`. A weighted average is at most its
//! maximum, so **every qualifying pair has `cos ≥ t` or `jac ≥ t`** for the
//! blended prefilter threshold
//!
//! ```text
//! t = S / (wc + wj)      (t ≤ min_likelihood ≤ 1)
//! ```
//!
//! Candidate generation therefore runs two prefix-filtered similarity joins
//! and unions their discoveries; each is individually lossless at
//! threshold `t`:
//!
//! * **Cosine join.** Record `b` stores its unit tf-idf vector sorted by
//!   descending weight and indexes the shortest prefix whose remaining tail
//!   has L2 norm `‖tail(b)‖ < t` (the tail norm is kept as
//!   `suffix_bound[b]`). For any probe `a` (also a unit vector),
//!   Cauchy–Schwarz bounds the tail's possible contribution:
//!   `Σ_{shared ∩ tail(b)} a_i·b_i ≤ ‖tail(b)‖ < t`. Hence if
//!   `cos(a, b) ≥ t`, the *indexed prefix* of `b` must contribute
//!   `cos − ‖tail(b)‖ > 0` — at least one shared token is indexed, and `a`
//!   (which probes with **all** of its tokens) touches `b`.
//! * **Jaccard join.** Record `b` orders its token set by the global token
//!   rank (ascending document frequency, ties by id) and indexes only its
//!   first `|b| − ⌈t·|b|⌉ + 1` tokens. If `jac(a, b) ≥ t` the pair shares
//!   `|a ∩ b| ≥ t·|a ∪ b| ≥ ⌈t·|b|⌉` tokens; were the indexed prefix
//!   overlap-free, all shared tokens would sit in the suffix, which holds
//!   only `⌈t·|b|⌉ − 1` tokens — contradiction. So at least one shared
//!   token is indexed, and the probe (which walks **all** of its tokens,
//!   in the same global rank order) touches `b`. Restricting the probe to
//!   its own prefix is also lossless (the symmetric pigeonhole), but it
//!   loosens the positional bound below so much that verification costs
//!   dwarf the scan savings — measured, not guessed — so the probe walks
//!   its full set.
//!
//! # Length filter (PPJoin size filter)
//!
//! `jac(a, b) ≤ min(|a|,|b|) / max(|a|,|b|)`, so a pair whose set sizes
//! violate `t·|a| ≤ |b| ≤ |a|/t` can never reach `jac ≥ t`. The Jaccard
//! scan therefore skips any posting entry failing that size window (each
//! entry carries `|b|` inline, so the check costs one compare and no
//! extra cache line). Losslessness is preserved because the skipped pair
//! can only qualify through `cos ≥ t`, and the cosine join — which has no
//! length filter — still discovers it. The same size predicate is
//! re-evaluated in the verifier (it depends only on `(|a|, |b|, t)`), so
//! the verifier knows the overlap counter for a length-filtered pair is
//! incomplete and falls back to the size-only bound and the exact merge
//! join for that pair.
//!
//! # Positional filter
//!
//! Both sides order tokens by the same global rank (document frequency
//! ascending, ties by token id): `b`'s indexed prefix is its lowest-rank
//! tokens, and the probe walks its full token set in that rank order. A
//! shared token is counted exactly when it is indexed, so every
//! *uncounted* shared token lives in `b`'s suffix — at most `jac_cut[b]`
//! of them. Their probe positions are also constrained: a token in `b`'s
//! suffix outranks every indexed token of `b`, including the
//! highest-ranked counted match, so in the probe's rank order it can only
//! appear *after* that match. With `pos` = number of probe tokens consumed
//! up to and including the last counted match, the intersection is
//! bounded by
//!
//! ```text
//! |a ∩ b| ≤ cnt + min(jac_cut[b], |a| − pos)
//! ```
//!
//! which tightens the plain prefix bound exactly when the shared tokens
//! sit early in the probe's rank order (the common case: rare tokens are
//! what records genuinely share).
//!
//! # Cosine tail completion
//!
//! The cosine probe accumulates only *indexed* products, so a touched
//! pair's exact cosine seems to need a full merge join of the two tf-idf
//! vectors — and at scale almost every merge is wasted on pairs that then
//! fail the blend floor. Instead the index keeps each record's **unindexed
//! tail entries** `(token, weight)`, sorted by token id, in a second CSR
//! arena. At verification time the few tail tokens of `b` are
//! binary-searched in `a`'s id-sorted vector:
//!
//! * **No tail token shared** — the accumulator already received exactly
//!   the shared-token products, in ascending token-id order: the same f64
//!   additions, in the same order, as the merge join (the merge's unshared
//!   tokens contribute exact `±0.0` products, which never change the sum's
//!   bits). `acc` *is* the merge cosine, bit for bit.
//! * **Tail tokens shared** — `acc + Σ shared-tail products` equals the
//!   true cosine up to summation-order rounding (≪ the `1e-9` slack), so
//!   `acc + Σ + 1e-9` is a sound refined upper bound that prunes nearly
//!   every pair the full merge would reject; only survivors pay the exact
//!   merge (which then yields the bit-identical value).
//!
//! At 50k records / floor 0.3 this collapses exact cosine merges from
//! ~25 M to ~80 k while keeping output bit-identical to brute force.
//!
//! One sign subtlety: sublinear tf damping (`1 + ln(tf)`) makes tokens of
//! fractionally-weighted fields carry *negative* vector components, so a
//! pair's dot product can be negative (the cosine clamps at 0). The
//! Cauchy–Schwarz tail bound is sign-free, so discovery is unaffected; the
//! verifier's accumulator-derived cosine bound clamps at 0 before it enters
//! the blend bound.
//!
//! Floating-point safety: the thresholds used to *cut* prefixes and to
//! reject lengths are slacked by `1e-7` (`t_eff = t − 1e-7`, the length
//! window uses `t − 1e-7`, and `⌈(t − 1e-9)·|b|⌉` for the integer prefix),
//! and the accumulator-based cosine bound adds `1e-9` — orders of magnitude
//! above the worst-case rounding of these O(10)-term sums, so a borderline
//! pair is always *kept* and re-scored exactly, never dropped. The
//! positional and length filters reason over exact integers on top of those
//! slacked thresholds, so they introduce no new rounding surface.
//!
//! Degenerate blends stay lossless: when `t ≤ 0` (the extra measures alone
//! can reach the floor, or `wc = wj = 0`) the Jaccard join indexes every
//! token of every record with no length or positional filtering, which
//! rediscovers exactly the classic "shares ≥ 1 token" join.

use crate::block::{BlockMap, CascadePlan};
use crate::corpus::TokenizedCorpus;
use crate::tfidf::TfIdfIndex;

/// Slack subtracted from prefix-cut (and length-window) thresholds so float
/// rounding can only ever enlarge a prefix or widen the window, never drop
/// a qualifying pair.
pub(crate) const FILTER_SLACK: f64 = 1e-7;

/// Slack added to accumulator-derived cosine upper bounds.
pub(crate) const BOUND_SLACK: f64 = 1e-9;

/// Whether the Jaccard length (size) filter rejects a pair with token-set
/// sizes `la`, `lb` at the slacked threshold `t_len = t − 1e-7`: `jac ≤
/// min/max < t` whenever either size falls outside `[t·other, other/t]`.
/// Pure integer/f64 comparison — the probe scan and the verifier evaluate
/// it identically, so the verifier always knows whether the overlap
/// counter for a pair is complete.
#[inline]
pub(crate) fn length_filtered(t_len: f64, la: usize, lb: usize) -> bool {
    (lb as f64) < t_len * la as f64 || (la as f64) < t_len * lb as f64
}

/// Prefix-filtered posting lists for one candidate-generation run, stored
/// as CSR arenas: per join, one flat entry array plus a `vocab + 1` offset
/// table (token `t`'s postings span `bounds[t]..bounds[t+1]`).
///
/// Only *index-side* records appear in the postings: for a cross join the B
/// side (ids `split..n`, probed by every A record), for a self join all
/// records (a probe `a` slices each list to entries with id `> a`, so every
/// unordered pair is generated exactly once, from its smaller endpoint).
#[derive(Debug)]
pub(crate) struct PrefixIndex {
    /// Whether the cosine join runs (`wc > 0` and `t > 0`).
    pub cos_active: bool,
    /// Whether the Jaccard join runs *prefix-filtered* (`t > 0` and
    /// `wj > 0`); false for the lossless `t ≤ 0` fallback (full postings,
    /// no filters) and for `wj = 0` (no Jaccard join). The length and
    /// positional filters on top of the prefix are decided **per block** by
    /// [`Self::plan`].
    pub jac_filtered: bool,
    /// The slacked length-window threshold `t − 1e-7` (only meaningful when
    /// `jac_filtered`).
    pub t_len: f64,
    /// Id-range tiling of the index side (see [`crate::block`]).
    pub blocks: BlockMap,
    /// Per-block length/positional filter decisions (all off when
    /// `jac_filtered` is false).
    pub plan: CascadePlan,
    /// Per record: L2 norm of its *unindexed* vector tail (0 when the whole
    /// vector is indexed, in particular whenever the filter is inactive).
    pub cos_suffix_bound: Vec<f64>,
    /// Per record: how many of its tokens are *not* indexed in the Jaccard
    /// postings. A probe's per-token overlap counter plus this cut is an
    /// upper bound on the true intersection size; when the cut is 0 the
    /// counter is exact and the verifier skips the merge join entirely.
    /// `u32::MAX` marks un-indexed records (their counter never bounds
    /// anything and never claims exactness).
    pub jac_cut: Vec<u32>,
    /// Cosine prefix entries `(record, tf-idf weight)`, token-major,
    /// ascending by record id within a token.
    cos_entries: Vec<(u32, f32)>,
    /// `cos_entries` offsets, `vocab + 1` long.
    cos_bounds: Vec<u32>,
    /// Each indexed record's *unindexed* cosine tail — the `(token,
    /// weight)` vector entries behind the prefix cut, sorted by token id —
    /// record-major. The verifier completes the partial dot product
    /// against these few entries: if none is shared with the probe, the
    /// accumulator already *is* the exact merge cosine, and otherwise
    /// `acc + Σ shared-tail products` bounds it tightly enough to skip
    /// almost every full merge join.
    cos_tail_entries: Vec<(u32, f32)>,
    /// `cos_tail_entries` offsets, `n + 1` long.
    cos_tail_bounds: Vec<u32>,
    /// Jaccard prefix entries `(record, token-set size)`, token-major,
    /// ascending by record id within a token. The size rides inline so the
    /// length filter never leaves the posting cache line.
    jac_entries: Vec<(u32, u32)>,
    /// `jac_entries` offsets, `vocab + 1` long.
    jac_bounds: Vec<u32>,
    /// Probe-side token sets re-ordered by global rank (df ascending, ties
    /// by id) — the order the positional filter's `pos` counts over. Built
    /// only when some block enables the positional filter
    /// (`plan.any_pos`); record `a` spans
    /// `probe_bounds[a]..probe_bounds[a+1]`.
    probe_flat: Vec<u32>,
    /// `probe_flat` offsets, `probe_count + 1` long when built.
    probe_bounds: Vec<u32>,
}

/// Build-time knobs for [`PrefixIndex::build`] beyond the corpus and index
/// themselves.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PrefixParams {
    /// The blended prefilter threshold `t` (see the module docs); `t ≤ 0`
    /// is the lossless unfiltered fallback.
    pub threshold: f64,
    /// Whether the cosine similarity carries blend weight.
    pub cos_weight_positive: bool,
    /// Whether the Jaccard similarity carries blend weight.
    pub jac_weight_positive: bool,
    /// Cross-join split: `Some(s)` indexes only ids `s..n`.
    pub split: Option<usize>,
    /// Worker threads for the build (0 = one per core); output is identical
    /// for every value.
    pub threads: usize,
    /// Records per index-side block (0 = auto, see [`crate::block`]).
    pub block_records: usize,
}

/// Counting-sort record-major staged `(token, entry)` pairs into a
/// token-major CSR arena. Staging order is ascending record id, and the
/// fill is stable, so each token's slice ascends by record id.
fn csr_from_staged<E: Copy + Default>(vocab: usize, staged: &[(u32, E)]) -> (Vec<u32>, Vec<E>) {
    let mut bounds = vec![0u32; vocab + 1];
    for &(token, _) in staged {
        bounds[token as usize + 1] += 1;
    }
    for t in 0..vocab {
        bounds[t + 1] += bounds[t];
    }
    let mut cursor: Vec<u32> = bounds[..vocab].to_vec();
    let mut entries = vec![E::default(); staged.len()];
    for &(token, entry) in staged {
        let c = &mut cursor[token as usize];
        entries[*c as usize] = entry;
        *c += 1;
    }
    (bounds, entries)
}

impl PrefixIndex {
    /// Builds prefix-filtered postings for `params.threshold = t` over the
    /// index-side records, on up to `params.threads` workers.
    ///
    /// `jac_weight_positive` / `cos_weight_positive` say which similarity
    /// actually carries blend weight; a zero-weight side cannot make a pair
    /// qualify on its own, so its join is skipped (unless `t ≤ 0`, where the
    /// full Jaccard join is kept as the lossless fallback).
    ///
    /// Per-record prefix cuts are computed in parallel chunks whose staged
    /// entries are concatenated in chunk order — the exact sequence a
    /// sequential pass stages — and the counting sort into token-major
    /// arenas is order-preserving, so the built index is bit-identical for
    /// every thread count.
    pub fn build(corpus: &TokenizedCorpus, index: &TfIdfIndex, params: PrefixParams) -> Self {
        let n = corpus.num_records();
        let vocab = corpus.vocabulary_size();
        let threshold = params.threshold;
        let threads = params.threads;
        let index_start = params.split.unwrap_or(0);
        let filtered = threshold > 0.0;
        let cos_active = filtered && params.cos_weight_positive;
        let jac_active = !filtered || params.jac_weight_positive;
        let jac_filtered = filtered && jac_active;
        let t_len = threshold - FILTER_SLACK;
        let blocks = BlockMap::new(index_start, n, params.block_records);
        // Index-side records per parallel work unit.
        const CHUNK: usize = 1024;
        let index_len = n - index_start;

        // Entries are staged record-major (the natural build order) and
        // counting-sorted into the token-major arena afterwards.
        let mut cos_suffix_bound: Vec<f64> = vec![0.0; n];
        let mut cos_staged: Vec<(u32, (u32, f32))> = Vec::new();
        let mut cos_tail_entries: Vec<(u32, f32)> = Vec::new();
        let mut cos_tail_bounds: Vec<u32> = vec![0; n + 1];
        if cos_active {
            let t_eff = threshold - FILTER_SLACK;
            let chunks = crate::par::map_chunks(index_len, CHUNK, threads, |range| {
                let mut suffix: Vec<f64> = Vec::with_capacity(range.len());
                let mut staged: Vec<(u32, (u32, f32))> = Vec::new();
                let mut tails_flat: Vec<(u32, f32)> = Vec::new();
                let mut tail_lens: Vec<u32> = Vec::with_capacity(range.len());
                let mut order: Vec<(u32, f32)> = Vec::new();
                let mut tails: Vec<f64> = Vec::new();
                for b in range.start + index_start..range.end + index_start {
                    order.clear();
                    order.extend_from_slice(index.vector(b as u32));
                    // Heaviest tokens first (by magnitude — sublinear tf
                    // damping can make fractionally-weighted components
                    // negative); ties broken by id for determinism.
                    order.sort_unstable_by(|x, y| {
                        y.1.abs()
                            .partial_cmp(&x.1.abs())
                            .expect("finite weights")
                            .then(x.0.cmp(&y.0))
                    });
                    tails.clear();
                    tails.resize(order.len() + 1, 0.0);
                    for i in (0..order.len()).rev() {
                        tails[i] = tails[i + 1] + order[i].1 as f64 * order[i].1 as f64;
                    }
                    let prefix =
                        (0..=order.len()).find(|&p| tails[p].sqrt() < t_eff).unwrap_or(order.len());
                    suffix.push(tails[prefix].sqrt());
                    for &(token, w) in &order[..prefix] {
                        staged.push((token, (b as u32, w)));
                    }
                    // Stash the unindexed tail sorted by token id
                    // (probe-side lookups are binary searches over the
                    // probe's id-sorted vector).
                    let tail_start = tails_flat.len();
                    tails_flat.extend_from_slice(&order[prefix..]);
                    tails_flat[tail_start..].sort_unstable_by_key(|e| e.0);
                    tail_lens.push(
                        u32::try_from(tails_flat.len() - tail_start).expect("cos tail overflow"),
                    );
                }
                (suffix, staged, tails_flat, tail_lens)
            });
            let mut b = index_start;
            for (suffix, staged, tails_flat, tail_lens) in chunks {
                for (s, len) in suffix.into_iter().zip(tail_lens) {
                    cos_suffix_bound[b] = s;
                    cos_tail_bounds[b + 1] =
                        cos_tail_bounds[b].checked_add(len).expect("cos tail arena overflow");
                    b += 1;
                }
                cos_staged.extend_from_slice(&staged);
                cos_tail_entries.extend_from_slice(&tails_flat);
            }
            // Records before `index_start` (cross-join A side) keep empty
            // tails; the zero-initialized offsets are already monotone.
        }
        let (cos_bounds, cos_entries) = csr_from_staged(vocab, &cos_staged);
        drop(cos_staged);

        // Un-indexed records keep a cut of u32::MAX: their overlap counter
        // never bounds anything and never claims exactness.
        let mut jac_cut: Vec<u32> = vec![u32::MAX; n];
        let mut jac_staged: Vec<(u32, (u32, u32))> = Vec::new();
        let df = if jac_active { corpus.set_doc_freq() } else { Vec::new() };
        if jac_active {
            let chunks = crate::par::map_chunks(index_len, CHUNK, threads, |range| {
                let mut cuts: Vec<u32> = Vec::with_capacity(range.len());
                let mut staged: Vec<(u32, (u32, u32))> = Vec::new();
                let mut order: Vec<u32> = Vec::new();
                for b in range.start + index_start..range.end + index_start {
                    let set = corpus.token_set(b);
                    if set.is_empty() {
                        cuts.push(u32::MAX);
                        continue;
                    }
                    let prefix = if filtered {
                        let required =
                            ((threshold - BOUND_SLACK) * set.len() as f64).ceil() as usize;
                        if required < 1 {
                            set.len()
                        } else {
                            set.len() - required + 1
                        }
                    } else {
                        set.len()
                    };
                    cuts.push((set.len() - prefix) as u32);
                    order.clear();
                    order.extend_from_slice(set);
                    // Global rank order: rarest first, ties by id. The
                    // prefix *size* alone carries the prefix-filter
                    // argument; the *order* is what the positional filter
                    // reasons over (the probe walks its tokens in the same
                    // rank order).
                    order.sort_unstable_by_key(|&t| (df[t as usize], t));
                    let len = set.len() as u32;
                    for &token in &order[..prefix] {
                        staged.push((token, (b as u32, len)));
                    }
                }
                (cuts, staged)
            });
            let mut b = index_start;
            for (cuts, staged) in chunks {
                for cut in cuts {
                    jac_cut[b] = cut;
                    b += 1;
                }
                jac_staged.extend_from_slice(&staged);
            }
        }
        let (jac_bounds, jac_entries) = csr_from_staged(vocab, &jac_staged);
        drop(jac_staged);

        // The adaptive cascade: per-block length/positional decisions from
        // df/size statistics (see `crate::block` for the cost model). All
        // off in the t ≤ 0 fallback — its postings are unfiltered.
        let probe_count = params.split.unwrap_or(n);
        let plan = if jac_filtered {
            CascadePlan::compute(&blocks, corpus, &jac_cut, probe_count, t_len)
        } else {
            CascadePlan::all_off(blocks.num_blocks())
        };
        let len_blocks = plan.len_on.iter().filter(|&&x| x).count();
        let pos_blocks = plan.pos_on.iter().filter(|&&x| x).count();
        crowdjoin_obs::counter("matcher.blocks", crowdjoin_obs::NO_SHARD)
            .add(blocks.num_blocks() as u64);
        crowdjoin_obs::counter("matcher.blocks.len_on", crowdjoin_obs::NO_SHARD)
            .add(len_blocks as u64);
        crowdjoin_obs::counter("matcher.blocks.pos_on", crowdjoin_obs::NO_SHARD)
            .add(pos_blocks as u64);

        // Probe-side rank-ordered token lists — needed only when some block
        // tracks the positional cursor (the t ≤ 0 fallback, cosine-only
        // blends, and pos-off cascades scan sets in id order).
        let mut probe_flat: Vec<u32> = Vec::new();
        let mut probe_bounds: Vec<u32> = Vec::new();
        if plan.any_pos {
            let chunks = crate::par::map_chunks(probe_count, CHUNK, threads, |range| {
                let mut flat: Vec<u32> = Vec::new();
                let mut lens: Vec<u32> = Vec::with_capacity(range.len());
                let mut order: Vec<u32> = Vec::new();
                for a in range {
                    order.clear();
                    order.extend_from_slice(corpus.token_set(a));
                    order.sort_unstable_by_key(|&t| (df[t as usize], t));
                    flat.extend_from_slice(&order);
                    lens.push(u32::try_from(order.len()).expect("probe arena overflow"));
                }
                (flat, lens)
            });
            probe_bounds.reserve(probe_count + 1);
            probe_bounds.push(0);
            for (flat, lens) in chunks {
                probe_flat.extend_from_slice(&flat);
                for len in lens {
                    let end = probe_bounds
                        .last()
                        .expect("non-empty bounds")
                        .checked_add(len)
                        .expect("probe arena overflow");
                    probe_bounds.push(end);
                }
            }
        }

        Self {
            cos_active,
            jac_filtered,
            t_len,
            blocks,
            plan,
            cos_suffix_bound,
            jac_cut,
            cos_entries,
            cos_bounds,
            cos_tail_entries,
            cos_tail_bounds,
            jac_entries,
            jac_bounds,
            probe_flat,
            probe_bounds,
        }
    }

    /// Record `b`'s unindexed cosine tail entries `(token, weight)`,
    /// sorted by token id. Empty when `b`'s whole vector is indexed (and
    /// for all records when the cosine join is inactive).
    #[inline]
    pub fn cos_tail(&self, b: u32) -> &[(u32, f32)] {
        let b = b as usize;
        &self.cos_tail_entries
            [self.cos_tail_bounds[b] as usize..self.cos_tail_bounds[b + 1] as usize]
    }

    /// Probe record `a`'s token set in global rank order (only built when
    /// some block enables the positional filter, `plan.any_pos`).
    #[inline]
    pub fn probe_tokens(&self, a: u32) -> &[u32] {
        let a = a as usize;
        &self.probe_flat[self.probe_bounds[a] as usize..self.probe_bounds[a + 1] as usize]
    }

    /// Arena index range `[lo, hi)` of `token`'s cosine postings — the
    /// blocked kernel keeps raw cursors into the arena so a token's list
    /// can be consumed block by block. `(0, 0)` for unknown tokens.
    #[inline]
    pub fn cos_range(&self, token: u32) -> (u32, u32) {
        let t = token as usize;
        if t + 1 >= self.cos_bounds.len() {
            return (0, 0);
        }
        (self.cos_bounds[t], self.cos_bounds[t + 1])
    }

    /// Arena index range `[lo, hi)` of `token`'s Jaccard postings; `(0, 0)`
    /// for unknown tokens.
    #[inline]
    pub fn jac_range(&self, token: u32) -> (u32, u32) {
        let t = token as usize;
        if t + 1 >= self.jac_bounds.len() {
            return (0, 0);
        }
        (self.jac_bounds[t], self.jac_bounds[t + 1])
    }

    /// The full cosine posting arena (indexed by [`Self::cos_range`]
    /// cursors).
    #[inline]
    pub fn cos_arena(&self) -> &[(u32, f32)] {
        &self.cos_entries
    }

    /// The full Jaccard posting arena (indexed by [`Self::jac_range`]
    /// cursors).
    #[inline]
    pub fn jac_arena(&self) -> &[(u32, u32)] {
        &self.jac_entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdjoin_records::{Dataset, Record, Schema, Table};

    fn dataset(names: &[&str]) -> Dataset {
        let mut table = Table::new(Schema::new(vec!["name"]));
        for n in names {
            table.push(Record::new(vec![*n]));
        }
        let n = table.len();
        Dataset { table, entity_of: (0..n as u32).collect(), split: None, name: "t".into() }
    }

    fn build(
        corpus: &TokenizedCorpus,
        index: &TfIdfIndex,
        threshold: f64,
        split: Option<usize>,
    ) -> PrefixIndex {
        PrefixIndex::build(
            corpus,
            index,
            PrefixParams {
                threshold,
                cos_weight_positive: true,
                jac_weight_positive: true,
                split,
                threads: 1,
                block_records: 0,
            },
        )
    }

    fn cos_postings(pf: &PrefixIndex, token: u32) -> &[(u32, f32)] {
        let (lo, hi) = pf.cos_range(token);
        &pf.cos_arena()[lo as usize..hi as usize]
    }

    fn jac_postings(pf: &PrefixIndex, token: u32) -> &[(u32, u32)] {
        let (lo, hi) = pf.jac_range(token);
        &pf.jac_arena()[lo as usize..hi as usize]
    }

    fn jac_total(pf: &PrefixIndex, vocab: usize) -> usize {
        (0..vocab as u32).map(|t| jac_postings(pf, t).len()).sum()
    }

    fn cos_total(pf: &PrefixIndex, vocab: usize) -> usize {
        (0..vocab as u32).map(|t| cos_postings(pf, t).len()).sum()
    }

    #[test]
    fn inactive_threshold_indexes_everything_via_jaccard() {
        let ds = dataset(&["sony tv", "sony camera"]);
        let corpus = TokenizedCorpus::build(&ds);
        let index = TfIdfIndex::from_corpus(&corpus, &[1.0]);
        let pf = build(&corpus, &index, 0.0, None);
        assert!(!pf.cos_active);
        assert!(!pf.jac_filtered, "t = 0 is the unfiltered fallback");
        assert_eq!(jac_total(&pf, corpus.vocabulary_size()), 4, "every token indexed");
    }

    #[test]
    fn high_threshold_shrinks_postings() {
        let ds = dataset(&[
            "tv common alpha",
            "tv common beta",
            "tv common gamma",
            "tv common delta",
            "tv common epsilon",
        ]);
        let corpus = TokenizedCorpus::build(&ds);
        let index = TfIdfIndex::from_corpus(&corpus, &[1.0]);
        let vocab = corpus.vocabulary_size();
        let loose = build(&corpus, &index, 0.05, None);
        let tight = build(&corpus, &index, 0.9, None);
        assert!(jac_total(&tight, vocab) < jac_total(&loose, vocab));
        assert!(cos_total(&tight, vocab) < cos_total(&loose, vocab));
        // The tight index leaves a positive tail bound on at least one record.
        assert!(tight.cos_suffix_bound.iter().any(|&b| b > 0.0));
    }

    #[test]
    fn cos_tail_is_the_id_sorted_complement_of_the_indexed_prefix() {
        let ds = dataset(&[
            "tv common alpha",
            "tv common beta",
            "tv common gamma",
            "tv common delta",
            "tv common epsilon",
        ]);
        let corpus = TokenizedCorpus::build(&ds);
        let index = TfIdfIndex::from_corpus(&corpus, &[1.0]);
        let pf = build(&corpus, &index, 0.9, None);
        let mut any_tail = false;
        for b in 0..corpus.num_records() as u32 {
            let tail = pf.cos_tail(b);
            any_tail |= !tail.is_empty();
            assert!(tail.windows(2).all(|w| w[0].0 < w[1].0), "tail sorted by id: {tail:?}");
            // Indexed prefix entries ∪ tail entries = the full vector.
            let mut rebuilt: Vec<(u32, f32)> = tail.to_vec();
            for t in 0..corpus.vocabulary_size() as u32 {
                for &(r, w) in cos_postings(&pf, t) {
                    if r == b {
                        rebuilt.push((t, w));
                    }
                }
            }
            rebuilt.sort_unstable_by_key(|e| e.0);
            assert_eq!(rebuilt, index.vector(b), "record {b}");
        }
        assert!(any_tail, "threshold 0.9 must cut at least one vector");
    }

    #[test]
    fn cross_join_indexes_only_the_b_side() {
        let mut table = Table::new(Schema::new(vec!["name"]));
        for n in ["left one", "left two", "right one", "right two"] {
            table.push(Record::new(vec![n]));
        }
        let ds = Dataset { table, entity_of: vec![0, 1, 2, 3], split: Some(2), name: "t".into() };
        let corpus = TokenizedCorpus::build(&ds);
        let index = TfIdfIndex::from_corpus(&corpus, &[1.0]);
        let pf = build(&corpus, &index, 0.05, Some(2));
        for t in 0..corpus.vocabulary_size() as u32 {
            assert!(jac_postings(&pf, t).iter().all(|&(r, _)| r >= 2), "A-side record indexed");
            assert!(cos_postings(&pf, t).iter().all(|&(r, _)| r >= 2));
        }
    }

    #[test]
    fn postings_ascend_by_record_id() {
        let ds = dataset(&["a b c", "a b d", "a c d", "b c d", "a b c d"]);
        let corpus = TokenizedCorpus::build(&ds);
        let index = TfIdfIndex::from_corpus(&corpus, &[1.0]);
        let pf = build(&corpus, &index, 0.3, None);
        for t in 0..corpus.vocabulary_size() as u32 {
            let jac = jac_postings(&pf, t);
            assert!(jac.windows(2).all(|w| w[0].0 < w[1].0), "{jac:?}");
            let cos = cos_postings(&pf, t);
            assert!(cos.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn jac_postings_carry_the_token_set_size() {
        let ds = dataset(&["a b c", "a b", "a"]);
        let corpus = TokenizedCorpus::build(&ds);
        let index = TfIdfIndex::from_corpus(&corpus, &[1.0]);
        let pf = build(&corpus, &index, 0.3, None);
        for t in 0..corpus.vocabulary_size() as u32 {
            for &(b, len) in jac_postings(&pf, t) {
                assert_eq!(len as usize, corpus.token_set(b as usize).len());
            }
        }
    }

    #[test]
    fn probe_order_is_a_rank_sorted_permutation() {
        // Long records so the cascade's cost model genuinely enables the
        // positional filter (mean merge length ≥ POS_MIN_MERGE_LEN) — the
        // rank-ordered probe lists are only built when some block does.
        let names: Vec<String> = (0..12)
            .map(|i| {
                (0..18).map(|j| format!("t{}", (i * 5 + j) % 40)).collect::<Vec<_>>().join(" ")
            })
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let ds = dataset(&refs);
        let corpus = TokenizedCorpus::build(&ds);
        let index = TfIdfIndex::from_corpus(&corpus, &[1.0]);
        let pf = build(&corpus, &index, 0.3, None);
        assert!(pf.jac_filtered);
        assert!(pf.plan.any_pos, "long sets must enable the positional filter");
        let df = corpus.set_doc_freq();
        for a in 0..corpus.num_records() {
            let probe = pf.probe_tokens(a as u32);
            let mut sorted = probe.to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, corpus.token_set(a), "permutation of the token set");
            assert!(
                probe.windows(2).all(|w| (df[w[0] as usize], w[0]) < (df[w[1] as usize], w[1])),
                "rank order (df, id): {probe:?}"
            );
        }
    }

    #[test]
    fn empty_corpus_probe_does_not_panic() {
        // Regression: the offset tables of an empty corpus are one entry
        // long (`[0]`), so probing *any* token indexed `bounds[t + 1]` out
        // of range — the degenerate `t ≤ 0` path hit it first because it
        // indexes every token and the streaming layer probes before the
        // first record is indexed. Unknown tokens must report no postings.
        let ds = dataset(&[]);
        let corpus = TokenizedCorpus::build(&ds);
        let index = TfIdfIndex::from_corpus(&corpus, &[1.0]);
        for threshold in [0.0, -0.5, 0.3] {
            let pf = build(&corpus, &index, threshold, None);
            assert!(jac_postings(&pf, 0).is_empty(), "threshold {threshold}");
            assert!(cos_postings(&pf, 0).is_empty(), "threshold {threshold}");
            assert!(jac_postings(&pf, 17).is_empty());
            assert!(cos_postings(&pf, 17).is_empty());
        }
    }

    #[test]
    fn probe_with_tokens_beyond_the_indexed_vocabulary_sees_no_postings() {
        // A streaming probe can carry tokens interned *after* the index was
        // built; they must behave as "no postings", not panic.
        let ds = dataset(&["sony tv", "sony camera"]);
        let corpus = TokenizedCorpus::build(&ds);
        let index = TfIdfIndex::from_corpus(&corpus, &[1.0]);
        let pf = build(&corpus, &index, 0.3, None);
        let beyond = corpus.vocabulary_size() as u32 + 5;
        assert!(jac_postings(&pf, beyond).is_empty());
        assert!(cos_postings(&pf, beyond).is_empty());
    }

    #[test]
    fn threaded_build_is_bit_identical_to_serial() {
        // > 1024 index records so build chunks are genuinely crossed; mixed
        // record lengths exercise prefix cuts, tails, and the cascade.
        let names: Vec<String> = (0..2600)
            .map(|i| {
                let len = 1 + (i * 7) % 29;
                (0..len).map(|j| format!("t{}", (i + j * 3) % 211)).collect::<Vec<_>>().join(" ")
            })
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let ds = dataset(&refs);
        let corpus = TokenizedCorpus::build(&ds);
        let index = TfIdfIndex::from_corpus(&corpus, &[1.0]);
        let params = PrefixParams {
            threshold: 0.35,
            cos_weight_positive: true,
            jac_weight_positive: true,
            split: None,
            threads: 1,
            block_records: 0,
        };
        let serial = PrefixIndex::build(&corpus, &index, params);
        for threads in [2, 4] {
            let par = PrefixIndex::build(&corpus, &index, PrefixParams { threads, ..params });
            assert_eq!(par.cos_bounds, serial.cos_bounds, "threads {threads}");
            assert_eq!(par.cos_tail_bounds, serial.cos_tail_bounds);
            assert_eq!(par.jac_bounds, serial.jac_bounds);
            assert_eq!(par.jac_cut, serial.jac_cut);
            assert_eq!(par.probe_bounds, serial.probe_bounds);
            assert_eq!(par.probe_flat, serial.probe_flat);
            assert_eq!(par.plan.len_on, serial.plan.len_on);
            assert_eq!(par.plan.pos_on, serial.plan.pos_on);
            assert_eq!(par.cos_entries.len(), serial.cos_entries.len());
            for (p, s) in par.cos_entries.iter().zip(serial.cos_entries.iter()) {
                assert_eq!((p.0, p.1.to_bits()), (s.0, s.1.to_bits()));
            }
            for (p, s) in par.cos_tail_entries.iter().zip(serial.cos_tail_entries.iter()) {
                assert_eq!((p.0, p.1.to_bits()), (s.0, s.1.to_bits()));
            }
            assert_eq!(par.jac_entries, serial.jac_entries);
            for (p, s) in par.cos_suffix_bound.iter().zip(serial.cos_suffix_bound.iter()) {
                assert_eq!(p.to_bits(), s.to_bits());
            }
        }
    }

    #[test]
    fn length_filter_window_is_slacked_and_symmetric() {
        // t = 0.5: sizes 4 and 2 sit exactly on the boundary (2 = 0.5·4);
        // the slack keeps the boundary pair, as losslessness demands.
        let t_len = 0.5 - FILTER_SLACK;
        assert!(!length_filtered(t_len, 4, 2));
        assert!(!length_filtered(t_len, 2, 4));
        assert!(length_filtered(t_len, 5, 2), "2 < 0.5·5 is out of the window");
        assert!(length_filtered(t_len, 2, 5));
        // A non-positive threshold never rejects (the t ≤ 0 fallback).
        assert!(!length_filtered(-0.1, 100, 1));
    }
}
