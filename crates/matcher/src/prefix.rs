//! AllPairs/PPJoin-style prefix, positional, and length filtering for
//! candidate generation.
//!
//! The unfiltered inverted-index join scans the **full** posting list of
//! every token a record holds — effectively quadratic on common tokens. The
//! (crate-internal) `PrefixIndex` built here indexes only a provably
//! sufficient *prefix* of each record, so a probing record discovers every
//! pair that can still clear the matcher's pruning floor while skipping the
//! bulk of the common-token cross products. All posting lists live in
//! contiguous CSR arenas (one flat entry array per join plus a per-token
//! offset table) — a probe walks cache-line-dense slices instead of chasing
//! one heap allocation per token.
//!
//! # The filter-safety argument
//!
//! The matcher emits a candidate `(a, b)` when the records share ≥ 1 token
//! and their blended likelihood clears `min_likelihood`:
//!
//! ```text
//! likelihood = (wc·cos + wj·jac + Σᵢ wiᵢ·eᵢ) / W,   W = wc + wj + Σᵢ wiᵢ
//! ```
//!
//! with `cos`, `jac`, and every extra measure `eᵢ` in `[0, 1]`. Substituting
//! `eᵢ ≤ 1`, any qualifying pair satisfies `wc·cos + wj·jac ≥ S` where
//! `S = min_likelihood·W − Σᵢ wiᵢ`. A weighted average is at most its
//! maximum, so **every qualifying pair has `cos ≥ t` or `jac ≥ t`** for the
//! blended prefilter threshold
//!
//! ```text
//! t = S / (wc + wj)      (t ≤ min_likelihood ≤ 1)
//! ```
//!
//! Candidate generation therefore runs two prefix-filtered similarity joins
//! and unions their discoveries; each is individually lossless at
//! threshold `t`:
//!
//! * **Cosine join.** Record `b` stores its unit tf-idf vector sorted by
//!   descending weight and indexes the shortest prefix whose remaining tail
//!   has L2 norm `‖tail(b)‖ < t` (the tail norm is kept as
//!   `suffix_bound[b]`). For any probe `a` (also a unit vector),
//!   Cauchy–Schwarz bounds the tail's possible contribution:
//!   `Σ_{shared ∩ tail(b)} a_i·b_i ≤ ‖tail(b)‖ < t`. Hence if
//!   `cos(a, b) ≥ t`, the *indexed prefix* of `b` must contribute
//!   `cos − ‖tail(b)‖ > 0` — at least one shared token is indexed, and `a`
//!   (which probes with **all** of its tokens) touches `b`.
//! * **Jaccard join.** Record `b` orders its token set by the global token
//!   rank (ascending document frequency, ties by id) and indexes only its
//!   first `|b| − ⌈t·|b|⌉ + 1` tokens. If `jac(a, b) ≥ t` the pair shares
//!   `|a ∩ b| ≥ t·|a ∪ b| ≥ ⌈t·|b|⌉` tokens; were the indexed prefix
//!   overlap-free, all shared tokens would sit in the suffix, which holds
//!   only `⌈t·|b|⌉ − 1` tokens — contradiction. So at least one shared
//!   token is indexed, and the probe (which walks **all** of its tokens,
//!   in the same global rank order) touches `b`. Restricting the probe to
//!   its own prefix is also lossless (the symmetric pigeonhole), but it
//!   loosens the positional bound below so much that verification costs
//!   dwarf the scan savings — measured, not guessed — so the probe walks
//!   its full set.
//!
//! # Length filter (PPJoin size filter)
//!
//! `jac(a, b) ≤ min(|a|,|b|) / max(|a|,|b|)`, so a pair whose set sizes
//! violate `t·|a| ≤ |b| ≤ |a|/t` can never reach `jac ≥ t`. The Jaccard
//! scan therefore skips any posting entry failing that size window (each
//! entry carries `|b|` inline, so the check costs one compare and no
//! extra cache line). Losslessness is preserved because the skipped pair
//! can only qualify through `cos ≥ t`, and the cosine join — which has no
//! length filter — still discovers it. The same size predicate is
//! re-evaluated in the verifier (it depends only on `(|a|, |b|, t)`), so
//! the verifier knows the overlap counter for a length-filtered pair is
//! incomplete and falls back to the size-only bound and the exact merge
//! join for that pair.
//!
//! # Positional filter
//!
//! Both sides order tokens by the same global rank (document frequency
//! ascending, ties by token id): `b`'s indexed prefix is its lowest-rank
//! tokens, and the probe walks its full token set in that rank order. A
//! shared token is counted exactly when it is indexed, so every
//! *uncounted* shared token lives in `b`'s suffix — at most `jac_cut[b]`
//! of them. Their probe positions are also constrained: a token in `b`'s
//! suffix outranks every indexed token of `b`, including the
//! highest-ranked counted match, so in the probe's rank order it can only
//! appear *after* that match. With `pos` = number of probe tokens consumed
//! up to and including the last counted match, the intersection is
//! bounded by
//!
//! ```text
//! |a ∩ b| ≤ cnt + min(jac_cut[b], |a| − pos)
//! ```
//!
//! which tightens the plain prefix bound exactly when the shared tokens
//! sit early in the probe's rank order (the common case: rare tokens are
//! what records genuinely share).
//!
//! # Cosine tail completion
//!
//! The cosine probe accumulates only *indexed* products, so a touched
//! pair's exact cosine seems to need a full merge join of the two tf-idf
//! vectors — and at scale almost every merge is wasted on pairs that then
//! fail the blend floor. Instead the index keeps each record's **unindexed
//! tail entries** `(token, weight)`, sorted by token id, in a second CSR
//! arena. At verification time the few tail tokens of `b` are
//! binary-searched in `a`'s id-sorted vector:
//!
//! * **No tail token shared** — the accumulator already received exactly
//!   the shared-token products, in ascending token-id order: the same f64
//!   additions, in the same order, as the merge join (the merge's unshared
//!   tokens contribute exact `±0.0` products, which never change the sum's
//!   bits). `acc` *is* the merge cosine, bit for bit.
//! * **Tail tokens shared** — `acc + Σ shared-tail products` equals the
//!   true cosine up to summation-order rounding (≪ the `1e-9` slack), so
//!   `acc + Σ + 1e-9` is a sound refined upper bound that prunes nearly
//!   every pair the full merge would reject; only survivors pay the exact
//!   merge (which then yields the bit-identical value).
//!
//! At 50k records / floor 0.3 this collapses exact cosine merges from
//! ~25 M to ~80 k while keeping output bit-identical to brute force.
//!
//! One sign subtlety: sublinear tf damping (`1 + ln(tf)`) makes tokens of
//! fractionally-weighted fields carry *negative* vector components, so a
//! pair's dot product can be negative (the cosine clamps at 0). The
//! Cauchy–Schwarz tail bound is sign-free, so discovery is unaffected; the
//! verifier's accumulator-derived cosine bound clamps at 0 before it enters
//! the blend bound.
//!
//! Floating-point safety: the thresholds used to *cut* prefixes and to
//! reject lengths are slacked by `1e-7` (`t_eff = t − 1e-7`, the length
//! window uses `t − 1e-7`, and `⌈(t − 1e-9)·|b|⌉` for the integer prefix),
//! and the accumulator-based cosine bound adds `1e-9` — orders of magnitude
//! above the worst-case rounding of these O(10)-term sums, so a borderline
//! pair is always *kept* and re-scored exactly, never dropped. The
//! positional and length filters reason over exact integers on top of those
//! slacked thresholds, so they introduce no new rounding surface.
//!
//! Degenerate blends stay lossless: when `t ≤ 0` (the extra measures alone
//! can reach the floor, or `wc = wj = 0`) the Jaccard join indexes every
//! token of every record with no length or positional filtering, which
//! rediscovers exactly the classic "shares ≥ 1 token" join.

use crate::corpus::TokenizedCorpus;
use crate::tfidf::TfIdfIndex;

/// Slack subtracted from prefix-cut (and length-window) thresholds so float
/// rounding can only ever enlarge a prefix or widen the window, never drop
/// a qualifying pair.
pub(crate) const FILTER_SLACK: f64 = 1e-7;

/// Slack added to accumulator-derived cosine upper bounds.
pub(crate) const BOUND_SLACK: f64 = 1e-9;

/// Whether the Jaccard length (size) filter rejects a pair with token-set
/// sizes `la`, `lb` at the slacked threshold `t_len = t − 1e-7`: `jac ≤
/// min/max < t` whenever either size falls outside `[t·other, other/t]`.
/// Pure integer/f64 comparison — the probe scan and the verifier evaluate
/// it identically, so the verifier always knows whether the overlap
/// counter for a pair is complete.
#[inline]
pub(crate) fn length_filtered(t_len: f64, la: usize, lb: usize) -> bool {
    (lb as f64) < t_len * la as f64 || (la as f64) < t_len * lb as f64
}

/// Prefix-filtered posting lists for one candidate-generation run, stored
/// as CSR arenas: per join, one flat entry array plus a `vocab + 1` offset
/// table (token `t`'s postings span `bounds[t]..bounds[t+1]`).
///
/// Only *index-side* records appear in the postings: for a cross join the B
/// side (ids `split..n`, probed by every A record), for a self join all
/// records (a probe `a` slices each list to entries with id `> a`, so every
/// unordered pair is generated exactly once, from its smaller endpoint).
#[derive(Debug)]
pub(crate) struct PrefixIndex {
    /// Whether the cosine join runs (`wc > 0` and `t > 0`).
    pub cos_active: bool,
    /// Whether the Jaccard join runs with positional + length filtering
    /// (`t > 0` and `wj > 0`); false for the lossless `t ≤ 0` fallback
    /// (full postings, no filters) and for `wj = 0` (no Jaccard join).
    pub jac_positional: bool,
    /// The slacked length-window threshold `t − 1e-7` (only meaningful when
    /// `jac_positional`).
    pub t_len: f64,
    /// Per record: L2 norm of its *unindexed* vector tail (0 when the whole
    /// vector is indexed, in particular whenever the filter is inactive).
    pub cos_suffix_bound: Vec<f64>,
    /// Per record: how many of its tokens are *not* indexed in the Jaccard
    /// postings. A probe's per-token overlap counter plus this cut is an
    /// upper bound on the true intersection size; when the cut is 0 the
    /// counter is exact and the verifier skips the merge join entirely.
    /// `u32::MAX` marks un-indexed records (their counter never bounds
    /// anything and never claims exactness).
    pub jac_cut: Vec<u32>,
    /// Cosine prefix entries `(record, tf-idf weight)`, token-major,
    /// ascending by record id within a token.
    cos_entries: Vec<(u32, f32)>,
    /// `cos_entries` offsets, `vocab + 1` long.
    cos_bounds: Vec<u32>,
    /// Each indexed record's *unindexed* cosine tail — the `(token,
    /// weight)` vector entries behind the prefix cut, sorted by token id —
    /// record-major. The verifier completes the partial dot product
    /// against these few entries: if none is shared with the probe, the
    /// accumulator already *is* the exact merge cosine, and otherwise
    /// `acc + Σ shared-tail products` bounds it tightly enough to skip
    /// almost every full merge join.
    cos_tail_entries: Vec<(u32, f32)>,
    /// `cos_tail_entries` offsets, `n + 1` long.
    cos_tail_bounds: Vec<u32>,
    /// Jaccard prefix entries `(record, token-set size)`, token-major,
    /// ascending by record id within a token. The size rides inline so the
    /// length filter never leaves the posting cache line.
    jac_entries: Vec<(u32, u32)>,
    /// `jac_entries` offsets, `vocab + 1` long.
    jac_bounds: Vec<u32>,
    /// Probe-side token sets re-ordered by global rank (df ascending, ties
    /// by id) — the order the positional filter's `pos` counts over. Built
    /// only when `jac_positional`; record `a` spans
    /// `probe_bounds[a]..probe_bounds[a+1]`.
    probe_flat: Vec<u32>,
    /// `probe_flat` offsets, `probe_count + 1` long when built.
    probe_bounds: Vec<u32>,
}

/// Counting-sort record-major staged `(token, entry)` pairs into a
/// token-major CSR arena. Staging order is ascending record id, and the
/// fill is stable, so each token's slice ascends by record id.
fn csr_from_staged<E: Copy + Default>(vocab: usize, staged: &[(u32, E)]) -> (Vec<u32>, Vec<E>) {
    let mut bounds = vec![0u32; vocab + 1];
    for &(token, _) in staged {
        bounds[token as usize + 1] += 1;
    }
    for t in 0..vocab {
        bounds[t + 1] += bounds[t];
    }
    let mut cursor: Vec<u32> = bounds[..vocab].to_vec();
    let mut entries = vec![E::default(); staged.len()];
    for &(token, entry) in staged {
        let c = &mut cursor[token as usize];
        entries[*c as usize] = entry;
        *c += 1;
    }
    (bounds, entries)
}

impl PrefixIndex {
    /// Builds prefix-filtered postings for `threshold = t` over the
    /// index-side records.
    ///
    /// `jac_weight_positive` / `cos_weight_positive` say which similarity
    /// actually carries blend weight; a zero-weight side cannot make a pair
    /// qualify on its own, so its join is skipped (unless `t ≤ 0`, where the
    /// full Jaccard join is kept as the lossless fallback).
    // The record id `b` indexes per-record arrays *and* drives corpus/index
    // lookups; an enumerate-skip chain would obscure that.
    #[allow(clippy::needless_range_loop)]
    pub fn build(
        corpus: &TokenizedCorpus,
        index: &TfIdfIndex,
        threshold: f64,
        cos_weight_positive: bool,
        jac_weight_positive: bool,
        split: Option<usize>,
    ) -> Self {
        let n = corpus.num_records();
        let vocab = corpus.vocabulary_size();
        let index_start = split.unwrap_or(0);
        let filtered = threshold > 0.0;
        let cos_active = filtered && cos_weight_positive;
        let jac_active = !filtered || jac_weight_positive;
        let jac_positional = filtered && jac_active;
        let t_len = threshold - FILTER_SLACK;

        // Entries are staged record-major (the natural build order) and
        // counting-sorted into the token-major arena afterwards.
        let mut cos_suffix_bound: Vec<f64> = vec![0.0; n];
        let mut cos_staged: Vec<(u32, (u32, f32))> = Vec::new();
        let mut cos_tail_entries: Vec<(u32, f32)> = Vec::new();
        let mut cos_tail_bounds: Vec<u32> = vec![0; n + 1];
        if cos_active {
            let t_eff = threshold - FILTER_SLACK;
            let mut order: Vec<(u32, f32)> = Vec::new();
            let mut tails: Vec<f64> = Vec::new();
            for b in index_start..n {
                order.clear();
                order.extend_from_slice(index.vector(b as u32));
                // Heaviest tokens first (by magnitude — sublinear tf damping
                // can make fractionally-weighted components negative); ties
                // broken by id for determinism.
                order.sort_unstable_by(|x, y| {
                    y.1.abs().partial_cmp(&x.1.abs()).expect("finite weights").then(x.0.cmp(&y.0))
                });
                tails.clear();
                tails.resize(order.len() + 1, 0.0);
                for i in (0..order.len()).rev() {
                    tails[i] = tails[i + 1] + order[i].1 as f64 * order[i].1 as f64;
                }
                let prefix =
                    (0..=order.len()).find(|&p| tails[p].sqrt() < t_eff).unwrap_or(order.len());
                cos_suffix_bound[b] = tails[prefix].sqrt();
                for &(token, w) in &order[..prefix] {
                    cos_staged.push((token, (b as u32, w)));
                }
                // Stash the unindexed tail sorted by token id (probe-side
                // lookups are binary searches over the probe's id-sorted
                // vector).
                let tail_start = cos_tail_entries.len();
                cos_tail_entries.extend_from_slice(&order[prefix..]);
                cos_tail_entries[tail_start..].sort_unstable_by_key(|e| e.0);
                cos_tail_bounds[b + 1] =
                    u32::try_from(cos_tail_entries.len()).expect("cos tail arena overflow");
            }
            // Records before `index_start` (cross-join A side) keep empty
            // tails; make the offsets monotone for them too.
            for b in 0..index_start {
                cos_tail_bounds[b + 1] = cos_tail_bounds[b];
            }
        }
        let (cos_bounds, cos_entries) = csr_from_staged(vocab, &cos_staged);
        drop(cos_staged);

        // Un-indexed records keep a cut of u32::MAX: their overlap counter
        // never bounds anything and never claims exactness.
        let mut jac_cut: Vec<u32> = vec![u32::MAX; n];
        let mut jac_staged: Vec<(u32, (u32, u32))> = Vec::new();
        let df = if jac_active { corpus.set_doc_freq() } else { Vec::new() };
        if jac_active {
            let mut order: Vec<u32> = Vec::new();
            for b in index_start..n {
                let set = corpus.token_set(b);
                if set.is_empty() {
                    continue;
                }
                let prefix = if filtered {
                    let required = ((threshold - BOUND_SLACK) * set.len() as f64).ceil() as usize;
                    if required < 1 {
                        set.len()
                    } else {
                        set.len() - required + 1
                    }
                } else {
                    set.len()
                };
                jac_cut[b] = (set.len() - prefix) as u32;
                order.clear();
                order.extend_from_slice(set);
                // Global rank order: rarest first, ties by id. The prefix
                // *size* alone carries the prefix-filter argument; the
                // *order* is what the positional filter reasons over (the
                // probe walks its tokens in the same rank order).
                order.sort_unstable_by_key(|&t| (df[t as usize], t));
                let len = set.len() as u32;
                for &token in &order[..prefix] {
                    jac_staged.push((token, (b as u32, len)));
                }
            }
        }
        let (jac_bounds, jac_entries) = csr_from_staged(vocab, &jac_staged);
        drop(jac_staged);

        // Probe-side rank-ordered token lists (positional filter only; the
        // t ≤ 0 fallback and cosine-only blends scan sets in id order).
        let probe_count = split.unwrap_or(n);
        let mut probe_flat: Vec<u32> = Vec::new();
        let mut probe_bounds: Vec<u32> = Vec::new();
        if jac_positional {
            probe_bounds.reserve(probe_count + 1);
            probe_bounds.push(0);
            let mut order: Vec<u32> = Vec::new();
            for a in 0..probe_count {
                order.clear();
                order.extend_from_slice(corpus.token_set(a));
                order.sort_unstable_by_key(|&t| (df[t as usize], t));
                probe_flat.extend_from_slice(&order);
                probe_bounds.push(u32::try_from(probe_flat.len()).expect("probe arena overflow"));
            }
        }

        Self {
            cos_active,
            jac_positional,
            t_len,
            cos_suffix_bound,
            jac_cut,
            cos_entries,
            cos_bounds,
            cos_tail_entries,
            cos_tail_bounds,
            jac_entries,
            jac_bounds,
            probe_flat,
            probe_bounds,
        }
    }

    /// Cosine prefix postings of `token`: `(record, weight)`, ascending by
    /// record id. Tokens the index has never seen — any probe against an
    /// index built over an empty corpus, or a streaming probe whose
    /// vocabulary outgrew the index — have no postings.
    #[inline]
    pub fn cos_postings(&self, token: u32) -> &[(u32, f32)] {
        let t = token as usize;
        if t + 1 >= self.cos_bounds.len() {
            return &[];
        }
        &self.cos_entries[self.cos_bounds[t] as usize..self.cos_bounds[t + 1] as usize]
    }

    /// Record `b`'s unindexed cosine tail entries `(token, weight)`,
    /// sorted by token id. Empty when `b`'s whole vector is indexed (and
    /// for all records when the cosine join is inactive).
    #[inline]
    pub fn cos_tail(&self, b: u32) -> &[(u32, f32)] {
        let b = b as usize;
        &self.cos_tail_entries
            [self.cos_tail_bounds[b] as usize..self.cos_tail_bounds[b + 1] as usize]
    }

    /// Jaccard prefix postings of `token`: `(record, token-set size)`,
    /// ascending by record id. Unknown tokens (see [`Self::cos_postings`])
    /// have no postings.
    #[inline]
    pub fn jac_postings(&self, token: u32) -> &[(u32, u32)] {
        let t = token as usize;
        if t + 1 >= self.jac_bounds.len() {
            return &[];
        }
        &self.jac_entries[self.jac_bounds[t] as usize..self.jac_bounds[t + 1] as usize]
    }

    /// Probe record `a`'s token set in global rank order (only built when
    /// [`Self::jac_positional`]).
    #[inline]
    pub fn probe_tokens(&self, a: u32) -> &[u32] {
        let a = a as usize;
        &self.probe_flat[self.probe_bounds[a] as usize..self.probe_bounds[a + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdjoin_records::{Dataset, Record, Schema, Table};

    fn dataset(names: &[&str]) -> Dataset {
        let mut table = Table::new(Schema::new(vec!["name"]));
        for n in names {
            table.push(Record::new(vec![*n]));
        }
        let n = table.len();
        Dataset { table, entity_of: (0..n as u32).collect(), split: None, name: "t".into() }
    }

    fn jac_total(pf: &PrefixIndex, vocab: usize) -> usize {
        (0..vocab as u32).map(|t| pf.jac_postings(t).len()).sum()
    }

    fn cos_total(pf: &PrefixIndex, vocab: usize) -> usize {
        (0..vocab as u32).map(|t| pf.cos_postings(t).len()).sum()
    }

    #[test]
    fn inactive_threshold_indexes_everything_via_jaccard() {
        let ds = dataset(&["sony tv", "sony camera"]);
        let corpus = TokenizedCorpus::build(&ds);
        let index = TfIdfIndex::from_corpus(&corpus, &[1.0]);
        let pf = PrefixIndex::build(&corpus, &index, 0.0, true, true, None);
        assert!(!pf.cos_active);
        assert!(!pf.jac_positional, "t = 0 is the unfiltered fallback");
        assert_eq!(jac_total(&pf, corpus.vocabulary_size()), 4, "every token indexed");
    }

    #[test]
    fn high_threshold_shrinks_postings() {
        let ds = dataset(&[
            "tv common alpha",
            "tv common beta",
            "tv common gamma",
            "tv common delta",
            "tv common epsilon",
        ]);
        let corpus = TokenizedCorpus::build(&ds);
        let index = TfIdfIndex::from_corpus(&corpus, &[1.0]);
        let vocab = corpus.vocabulary_size();
        let loose = PrefixIndex::build(&corpus, &index, 0.05, true, true, None);
        let tight = PrefixIndex::build(&corpus, &index, 0.9, true, true, None);
        assert!(jac_total(&tight, vocab) < jac_total(&loose, vocab));
        assert!(cos_total(&tight, vocab) < cos_total(&loose, vocab));
        // The tight index leaves a positive tail bound on at least one record.
        assert!(tight.cos_suffix_bound.iter().any(|&b| b > 0.0));
    }

    #[test]
    fn cos_tail_is_the_id_sorted_complement_of_the_indexed_prefix() {
        let ds = dataset(&[
            "tv common alpha",
            "tv common beta",
            "tv common gamma",
            "tv common delta",
            "tv common epsilon",
        ]);
        let corpus = TokenizedCorpus::build(&ds);
        let index = TfIdfIndex::from_corpus(&corpus, &[1.0]);
        let pf = PrefixIndex::build(&corpus, &index, 0.9, true, true, None);
        let mut any_tail = false;
        for b in 0..corpus.num_records() as u32 {
            let tail = pf.cos_tail(b);
            any_tail |= !tail.is_empty();
            assert!(tail.windows(2).all(|w| w[0].0 < w[1].0), "tail sorted by id: {tail:?}");
            // Indexed prefix entries ∪ tail entries = the full vector.
            let mut rebuilt: Vec<(u32, f32)> = tail.to_vec();
            for t in 0..corpus.vocabulary_size() as u32 {
                for &(r, w) in pf.cos_postings(t) {
                    if r == b {
                        rebuilt.push((t, w));
                    }
                }
            }
            rebuilt.sort_unstable_by_key(|e| e.0);
            assert_eq!(rebuilt, index.vector(b), "record {b}");
        }
        assert!(any_tail, "threshold 0.9 must cut at least one vector");
    }

    #[test]
    fn cross_join_indexes_only_the_b_side() {
        let mut table = Table::new(Schema::new(vec!["name"]));
        for n in ["left one", "left two", "right one", "right two"] {
            table.push(Record::new(vec![n]));
        }
        let ds = Dataset { table, entity_of: vec![0, 1, 2, 3], split: Some(2), name: "t".into() };
        let corpus = TokenizedCorpus::build(&ds);
        let index = TfIdfIndex::from_corpus(&corpus, &[1.0]);
        let pf = PrefixIndex::build(&corpus, &index, 0.05, true, true, Some(2));
        for t in 0..corpus.vocabulary_size() as u32 {
            assert!(pf.jac_postings(t).iter().all(|&(r, _)| r >= 2), "A-side record indexed");
            assert!(pf.cos_postings(t).iter().all(|&(r, _)| r >= 2));
        }
    }

    #[test]
    fn postings_ascend_by_record_id() {
        let ds = dataset(&["a b c", "a b d", "a c d", "b c d", "a b c d"]);
        let corpus = TokenizedCorpus::build(&ds);
        let index = TfIdfIndex::from_corpus(&corpus, &[1.0]);
        let pf = PrefixIndex::build(&corpus, &index, 0.3, true, true, None);
        for t in 0..corpus.vocabulary_size() as u32 {
            let jac = pf.jac_postings(t);
            assert!(jac.windows(2).all(|w| w[0].0 < w[1].0), "{jac:?}");
            let cos = pf.cos_postings(t);
            assert!(cos.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn jac_postings_carry_the_token_set_size() {
        let ds = dataset(&["a b c", "a b", "a"]);
        let corpus = TokenizedCorpus::build(&ds);
        let index = TfIdfIndex::from_corpus(&corpus, &[1.0]);
        let pf = PrefixIndex::build(&corpus, &index, 0.3, true, true, None);
        for t in 0..corpus.vocabulary_size() as u32 {
            for &(b, len) in pf.jac_postings(t) {
                assert_eq!(len as usize, corpus.token_set(b as usize).len());
            }
        }
    }

    #[test]
    fn probe_order_is_a_rank_sorted_permutation() {
        let ds = dataset(&["a b c common", "a common", "b common", "c common", "common only"]);
        let corpus = TokenizedCorpus::build(&ds);
        let index = TfIdfIndex::from_corpus(&corpus, &[1.0]);
        let pf = PrefixIndex::build(&corpus, &index, 0.3, true, true, None);
        assert!(pf.jac_positional);
        let df = corpus.set_doc_freq();
        for a in 0..corpus.num_records() {
            let probe = pf.probe_tokens(a as u32);
            let mut sorted = probe.to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, corpus.token_set(a), "permutation of the token set");
            assert!(
                probe.windows(2).all(|w| (df[w[0] as usize], w[0]) < (df[w[1] as usize], w[1])),
                "rank order (df, id): {probe:?}"
            );
        }
    }

    #[test]
    fn empty_corpus_probe_does_not_panic() {
        // Regression: the offset tables of an empty corpus are one entry
        // long (`[0]`), so probing *any* token indexed `bounds[t + 1]` out
        // of range — the degenerate `t ≤ 0` path hit it first because it
        // indexes every token and the streaming layer probes before the
        // first record is indexed. Unknown tokens must report no postings.
        let ds = dataset(&[]);
        let corpus = TokenizedCorpus::build(&ds);
        let index = TfIdfIndex::from_corpus(&corpus, &[1.0]);
        for threshold in [0.0, -0.5, 0.3] {
            let pf = PrefixIndex::build(&corpus, &index, threshold, true, true, None);
            assert!(pf.jac_postings(0).is_empty(), "threshold {threshold}");
            assert!(pf.cos_postings(0).is_empty(), "threshold {threshold}");
            assert!(pf.jac_postings(17).is_empty());
            assert!(pf.cos_postings(17).is_empty());
        }
    }

    #[test]
    fn probe_with_tokens_beyond_the_indexed_vocabulary_sees_no_postings() {
        // A streaming probe can carry tokens interned *after* the index was
        // built; they must behave as "no postings", not panic.
        let ds = dataset(&["sony tv", "sony camera"]);
        let corpus = TokenizedCorpus::build(&ds);
        let index = TfIdfIndex::from_corpus(&corpus, &[1.0]);
        let pf = PrefixIndex::build(&corpus, &index, 0.3, true, true, None);
        let beyond = corpus.vocabulary_size() as u32 + 5;
        assert!(pf.jac_postings(beyond).is_empty());
        assert!(pf.cos_postings(beyond).is_empty());
    }

    #[test]
    fn length_filter_window_is_slacked_and_symmetric() {
        // t = 0.5: sizes 4 and 2 sit exactly on the boundary (2 = 0.5·4);
        // the slack keeps the boundary pair, as losslessness demands.
        let t_len = 0.5 - FILTER_SLACK;
        assert!(!length_filtered(t_len, 4, 2));
        assert!(!length_filtered(t_len, 2, 4));
        assert!(length_filtered(t_len, 5, 2), "2 < 0.5·5 is out of the window");
        assert!(length_filtered(t_len, 2, 5));
        // A non-positive threshold never rejects (the t ≤ 0 fallback).
        assert!(!length_filtered(-0.1, 100, 1));
    }
}
