//! Id-range blocking of the index side plus the adaptive filter cascade.
//!
//! # Why blocks
//!
//! The probe kernel accumulates into dense scratch arrays indexed by record
//! id. Unblocked, those arrays span the whole index side — ~20 MB at 1M
//! records — so at scale nearly every posting entry touches a cold cache
//! line (stamp + accumulator + counter), and the verify pass re-misses on
//! the per-record metadata. A [`BlockMap`] tiles the index-side id range
//! into fixed-size blocks; the kernel visits one block at a time with
//! scratch sized to the *block*, which keeps the entire working set
//! L2-resident.
//!
//! # Why id-range blocking is lossless
//!
//! Blocking here never drops pairs: the blocks partition the index-side id
//! range, every posting list is stored ascending by record id, and the
//! kernel advances a cursor per probe-token list through consecutive
//! blocks. Each posting entry is therefore scanned exactly once, in the
//! same per-pair order as the unblocked scan (a pair's postings all live in
//! the single block owning `b`, and within a block the token lists are
//! walked in the same order as before) — so the accumulated cosine, overlap
//! counter, and positional cursor are bit-identical per pair, and the
//! emitted candidates are identical. Contrast with *token* blocking (e.g.
//! canopies keyed by rare prefix tokens): that would split one pair's
//! postings across blocks and break the single-accumulation-order argument,
//! or drop pairs outright. One block spanning the whole index side is the
//! exact unblocked kernel, so both regimes share one code path.
//!
//! # The adaptive filter cascade
//!
//! PR 7's positional + length filters are *lossless but not free*: each
//! filtered posting entry pays a compare (length) or an extra store
//! (positional), and what they buy — skipped scratch touches and pruned
//! exact-Jaccard merges — depends on the workload. The 100k product
//! workload showed the positional filter as a net regression
//! (`positional_filter_speedup: 0.59`): short token sets make the exact
//! merges it prunes cheap, so the bookkeeping outweighs the savings. A
//! [`CascadePlan`] decides **per block**, from df/size statistics available
//! before any probing:
//!
//! * **Length filter** (`len_on`): on when the estimated fraction of the
//!   block's posting entries outside the PPJoin size window — computed from
//!   the probe-side size histogram × the block's entry-weighted size
//!   histogram — is at least [`LEN_MIN_SKIP`]. Skipping entries is the
//!   filter's only payoff; if (almost) nothing is skipped it only costs.
//! * **Positional filter** (`pos_on`): on when the mean probe-set size plus
//!   the block's mean (entry-weighted) set size reaches
//!   [`POS_MIN_MERGE_LEN`] — i.e. when the exact merges the tighter bound
//!   prunes are expensive enough to pay for the per-entry position store
//!   and the rank-ordered probe walk.
//!
//! Both filters are output-invariant (the verifier re-derives each block's
//! decisions exactly, and every emitted likelihood is computed by the same
//! exact formulas either way), so the cascade changes wall-clock only,
//! never the candidate set — the equivalence suite pins this across forced
//! block sizes.

use crate::corpus::TokenizedCorpus;

/// Auto block size: scratch (stamp/acc/cnt/pos ≈ 20 B per slot) plus the
/// block's verify metadata stay comfortably inside a typical L2.
pub(crate) const AUTO_BLOCK_RECORDS: usize = 8192;

/// Auto mode keeps a single block (the exact unblocked kernel) below this
/// index-side size — the whole scratch already fits in cache, and one block
/// skips the per-block cursor bookkeeping.
pub(crate) const UNBLOCKED_MAX: usize = 16384;

/// Minimum estimated skipped-entry fraction for the length filter to pay
/// for itself in a block.
pub(crate) const LEN_MIN_SKIP: f64 = 0.05;

/// Minimum mean merge length (probe mean + block mean set size) for the
/// positional filter's pruned merges to pay for its per-entry bookkeeping.
pub(crate) const POS_MIN_MERGE_LEN: f64 = 24.0;

/// Size-histogram bucket count for the length-filter estimate; set sizes
/// at or above the cap share the last bucket.
const HIST_BUCKETS: usize = 128;

/// Fixed-size tiling of the index-side record id range `[index_start,
/// index_end)`. Probe-side records (a cross join's A side) are never
/// blocked — they are walked one at a time anyway.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BlockMap {
    pub index_start: u32,
    pub index_end: u32,
    /// Records per block, ≥ 1.
    pub block_records: u32,
}

impl BlockMap {
    /// Builds the tiling for `requested` records per block (0 = auto: one
    /// block up to [`UNBLOCKED_MAX`] index records, [`AUTO_BLOCK_RECORDS`]
    /// beyond).
    pub fn new(index_start: usize, index_end: usize, requested: usize) -> Self {
        let len = index_end.saturating_sub(index_start);
        let block_records = match requested {
            0 if len <= UNBLOCKED_MAX => len.max(1),
            0 => AUTO_BLOCK_RECORDS,
            r => r.min(len.max(1)),
        };
        Self {
            index_start: u32::try_from(index_start).expect("index range overflow"),
            index_end: u32::try_from(index_end).expect("index range overflow"),
            block_records: u32::try_from(block_records).expect("block size overflow"),
        }
    }

    /// Number of blocks (0 for an empty index side).
    pub fn num_blocks(&self) -> usize {
        (self.index_end - self.index_start).div_ceil(self.block_records) as usize
    }

    /// The block owning index-side record `id`.
    #[inline]
    pub fn block_of(&self, id: u32) -> usize {
        debug_assert!(id >= self.index_start && id < self.index_end);
        ((id - self.index_start) / self.block_records) as usize
    }

    /// Record-id range `[lo, hi)` of block `k`.
    #[inline]
    pub fn range(&self, k: usize) -> (u32, u32) {
        let lo = self.index_start + k as u32 * self.block_records;
        (lo, (lo + self.block_records).min(self.index_end))
    }

    /// Scratch slots needed to hold any one block.
    pub fn scratch_len(&self) -> usize {
        (self.block_records as usize).min((self.index_end - self.index_start) as usize)
    }
}

/// Per-block filter decisions (see the module docs for the cost model).
#[derive(Debug)]
pub(crate) struct CascadePlan {
    /// Whether block `k`'s Jaccard scan applies the length (size-window)
    /// filter.
    pub len_on: Vec<bool>,
    /// Whether block `k`'s Jaccard scan tracks the positional cursor.
    pub pos_on: Vec<bool>,
    /// `pos_on.iter().any()` — when false, the rank-ordered probe lists are
    /// never needed and are not built.
    pub any_pos: bool,
}

impl CascadePlan {
    /// Everything off — the `t ≤ 0` unfiltered fallback (and inactive
    /// Jaccard joins).
    pub fn all_off(num_blocks: usize) -> Self {
        Self { len_on: vec![false; num_blocks], pos_on: vec![false; num_blocks], any_pos: false }
    }

    /// Cost-model decisions for a filtered Jaccard join at the slacked
    /// length threshold `t_len`, from df/size statistics only (no probing):
    /// the probe-side set-size histogram and, per block, the posting-entry-
    /// weighted set-size histogram of its indexed records (`jac_cut[b]`
    /// gives each record's indexed-prefix size; `u32::MAX` marks un-indexed
    /// records, which contribute no entries).
    pub fn compute(
        blocks: &BlockMap,
        corpus: &TokenizedCorpus,
        jac_cut: &[u32],
        probe_count: usize,
        t_len: f64,
    ) -> Self {
        let num_blocks = blocks.num_blocks();
        let bucket = |len: usize| len.min(HIST_BUCKETS - 1);
        let mut probe_hist = [0u64; HIST_BUCKETS];
        let mut probe_len_sum = 0u64;
        let mut probe_records = 0u64;
        for a in 0..probe_count {
            let la = corpus.token_set(a).len();
            if la == 0 {
                continue;
            }
            probe_hist[bucket(la)] += 1;
            probe_len_sum += la as u64;
            probe_records += 1;
        }
        let mean_probe_len =
            if probe_records == 0 { 0.0 } else { probe_len_sum as f64 / probe_records as f64 };

        let mut len_on = vec![false; num_blocks];
        let mut pos_on = vec![false; num_blocks];
        let mut block_hist = [0u64; HIST_BUCKETS];
        for k in 0..num_blocks {
            let (lo, hi) = blocks.range(k);
            block_hist.fill(0);
            let mut entry_len_sum = 0u64;
            let mut entries = 0u64;
            for b in lo..hi {
                let cut = jac_cut[b as usize];
                if cut == u32::MAX {
                    continue;
                }
                let lb = corpus.token_set(b as usize).len();
                let prefix = (lb as u32 - cut) as u64;
                block_hist[bucket(lb)] += prefix;
                entry_len_sum += lb as u64 * prefix;
                entries += prefix;
            }
            if entries == 0 || probe_records == 0 {
                continue;
            }
            // Estimated fraction of this block's posting entries a typical
            // probe's length filter would skip: probe sizes × entry sizes,
            // both from histograms (bucket index ≈ the size itself below
            // the cap, so the window predicate is evaluated on the real
            // sizes for all but the longest records).
            let mut skipped = 0.0f64;
            let total = probe_records as f64 * entries as f64;
            for (la, &pa) in probe_hist.iter().enumerate() {
                if pa == 0 {
                    continue;
                }
                for (lb, &qb) in block_hist.iter().enumerate() {
                    if qb != 0 && crate::prefix::length_filtered(t_len, la, lb) {
                        skipped += pa as f64 * qb as f64;
                    }
                }
            }
            len_on[k] = skipped / total >= LEN_MIN_SKIP;
            let mean_block_len = entry_len_sum as f64 / entries as f64;
            pos_on[k] = mean_probe_len + mean_block_len >= POS_MIN_MERGE_LEN;
        }
        let any_pos = pos_on.iter().any(|&p| p);
        Self { len_on, pos_on, any_pos }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdjoin_records::{Dataset, Record, Schema, Table};

    #[test]
    fn auto_sizing_keeps_small_inputs_unblocked() {
        let small = BlockMap::new(0, 5000, 0);
        assert_eq!(small.num_blocks(), 1);
        assert_eq!(small.scratch_len(), 5000);
        let large = BlockMap::new(0, 100_000, 0);
        assert_eq!(large.block_records as usize, AUTO_BLOCK_RECORDS);
        assert_eq!(large.num_blocks(), 100_000usize.div_ceil(AUTO_BLOCK_RECORDS));
        assert_eq!(large.scratch_len(), AUTO_BLOCK_RECORDS);
    }

    #[test]
    fn blocks_tile_the_index_range_exactly() {
        let map = BlockMap::new(3, 50, 7);
        let mut covered = Vec::new();
        for k in 0..map.num_blocks() {
            let (lo, hi) = map.range(k);
            assert!(lo < hi);
            for id in lo..hi {
                assert_eq!(map.block_of(id), k);
                covered.push(id);
            }
        }
        assert_eq!(covered, (3u32..50).collect::<Vec<_>>());
    }

    #[test]
    fn empty_index_side_has_no_blocks() {
        let map = BlockMap::new(10, 10, 0);
        assert_eq!(map.num_blocks(), 0);
        assert_eq!(map.scratch_len(), 0);
    }

    #[test]
    fn requested_block_size_is_honored_and_clamped() {
        let map = BlockMap::new(0, 100, 1_000_000);
        assert_eq!(map.num_blocks(), 1);
        let map = BlockMap::new(0, 100, 1);
        assert_eq!(map.num_blocks(), 100);
    }

    fn corpus_of(names: &[&str]) -> TokenizedCorpus {
        let mut table = Table::new(Schema::new(vec!["name"]));
        for n in names {
            table.push(Record::new(vec![*n]));
        }
        let n = table.len();
        let ds =
            Dataset { table, entity_of: (0..n as u32).collect(), split: None, name: "t".into() };
        TokenizedCorpus::build(&ds)
    }

    #[test]
    fn short_sets_disable_the_positional_filter() {
        // Mean merge length ~4 ≪ POS_MIN_MERGE_LEN: the merges the filter
        // would prune are too cheap to pay for its bookkeeping.
        let names: Vec<String> = (0..40).map(|i| format!("a{} b{}", i % 7, i % 5)).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let corpus = corpus_of(&refs);
        let blocks = BlockMap::new(0, corpus.num_records(), 0);
        // Every token indexed (cut 0) keeps the estimate simple.
        let jac_cut = vec![0u32; corpus.num_records()];
        let plan = CascadePlan::compute(&blocks, &corpus, &jac_cut, corpus.num_records(), 0.4);
        assert!(!plan.any_pos);
        assert!(plan.pos_on.iter().all(|&p| !p));
    }

    #[test]
    fn long_sets_enable_the_positional_filter() {
        let names: Vec<String> = (0..40)
            .map(|i| {
                (0..20).map(|j| format!("t{}", (i + j * 3) % 60)).collect::<Vec<_>>().join(" ")
            })
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let corpus = corpus_of(&refs);
        let blocks = BlockMap::new(0, corpus.num_records(), 0);
        let jac_cut = vec![0u32; corpus.num_records()];
        let plan = CascadePlan::compute(&blocks, &corpus, &jac_cut, corpus.num_records(), 0.4);
        assert!(plan.any_pos);
    }

    #[test]
    fn uniform_sizes_disable_the_length_filter_and_skew_enables_it() {
        // All sets the same size: the window skips nothing.
        let uniform: Vec<String> =
            (0..40).map(|i| format!("a{} b{} c{}", i, i + 1, i + 2)).collect();
        let refs: Vec<&str> = uniform.iter().map(String::as_str).collect();
        let corpus = corpus_of(&refs);
        let blocks = BlockMap::new(0, corpus.num_records(), 0);
        let jac_cut = vec![0u32; corpus.num_records()];
        let plan = CascadePlan::compute(&blocks, &corpus, &jac_cut, corpus.num_records(), 0.5);
        assert!(plan.len_on.iter().all(|&l| !l), "uniform sizes: nothing to skip");

        // Wide size spread at a high threshold: most cross-size pairs fall
        // outside the window.
        let skewed: Vec<String> = (0..40)
            .map(|i| {
                let len = 1 + (i * 5) % 19;
                (0..len).map(|j| format!("t{}", (i + j) % 97)).collect::<Vec<_>>().join(" ")
            })
            .collect();
        let refs: Vec<&str> = skewed.iter().map(String::as_str).collect();
        let corpus = corpus_of(&refs);
        let blocks = BlockMap::new(0, corpus.num_records(), 0);
        let jac_cut = vec![0u32; corpus.num_records()];
        let plan = CascadePlan::compute(&blocks, &corpus, &jac_cut, corpus.num_records(), 0.5);
        assert!(plan.len_on.iter().any(|&l| l), "skewed sizes: window must skip");
    }
}
