//! Measured-recall pins for the MinHash/LSH banding strategy.
//!
//! LSH is the matcher's only *approximate* path: colliding pairs are
//! re-scored exactly, so precision is 1.0 by construction, but a
//! qualifying pair whose token sets collide in no band is missed. These
//! tests measure that recall against the exact generator on seeded
//! workloads and pin it above configured targets.
//!
//! Everything is deterministic — dataset seeds are fixed and the hash
//! family derives from `LSH_SEED` — so the measured recall is a *constant*
//! for a given code version; the margin between measured value and target
//! exists to absorb intentional future retunes, not run-to-run noise.
//!
//! Banding math for the configurations pinned here (collision probability
//! `P(s) = 1 − (1 − s^rows)^bands`, knee near `(1/bands)^(1/rows)`):
//!
//! * 16 bands × 4 rows — knee ≈ 0.50: a near-duplicate detector. Catches
//!   the perturbed duplicates the generators plant (Jaccard well above
//!   0.5) and little else.
//! * 64 bands × 2 rows — knee ≈ 0.125: a wide net for the low-floor
//!   regime, where qualifying pairs can blend in with modest Jaccard.

use crowdjoin_matcher::{
    generate_candidates, recall_of, MatcherConfig, MatcherStrategy, ScoredCandidate,
};
use crowdjoin_records::{
    generate_paper, generate_product, ClusterSpec, Dataset, PaperGenConfig, PerturbConfig,
    ProductGenConfig,
};

fn product_workload() -> Dataset {
    generate_product(&ProductGenConfig::scaled(1_500))
}

fn paper_workload() -> Dataset {
    generate_paper(&PaperGenConfig {
        num_records: 3_000,
        clusters: ClusterSpec::PowerLaw { alpha: 1.9, max_size: 40, force_max: false },
        perturb: PerturbConfig::light(),
        sibling_probability: 0.1,
        seed: 20130622,
    })
}

fn exact_config(dataset: &Dataset, floor: f64) -> MatcherConfig {
    let arity = dataset.table.schema().arity();
    MatcherConfig { min_likelihood: floor, ..MatcherConfig::for_arity(arity) }
}

fn measured_recall(
    dataset: &Dataset,
    floor: f64,
    bands: usize,
    rows: usize,
) -> (f64, Vec<ScoredCandidate>, Vec<ScoredCandidate>) {
    let exact_cfg = exact_config(dataset, floor);
    let lsh_cfg =
        MatcherConfig { strategy: MatcherStrategy::Lsh { bands, rows }, ..exact_cfg.clone() };
    let exact = generate_candidates(dataset, &exact_cfg);
    let approx = generate_candidates(dataset, &lsh_cfg);
    (recall_of(&approx, &exact), approx, exact)
}

/// Shared subset/bit-identity check: LSH output must be a subset of exact
/// output with bit-identical likelihoods (precision 1.0).
fn assert_subset(approx: &[ScoredCandidate], exact: &[ScoredCandidate]) {
    let exact_of: std::collections::HashMap<(u32, u32), u64> =
        exact.iter().map(|c| ((c.a, c.b), c.likelihood.to_bits())).collect();
    for c in approx {
        assert_eq!(
            exact_of.get(&(c.a, c.b)),
            Some(&c.likelihood.to_bits()),
            "LSH pair ({}, {}) missing from exact output or bits drifted",
            c.a,
            c.b
        );
    }
}

#[test]
fn wide_banding_recalls_the_low_floor_product_join() {
    const TARGET: f64 = 0.80;
    let dataset = product_workload();
    let (recall, approx, exact) = measured_recall(&dataset, 0.3, 64, 2);
    assert!(!exact.is_empty(), "exact join found nothing — workload is degenerate");
    assert_subset(&approx, &exact);
    assert!(
        recall >= TARGET,
        "64x2 banding recall {recall:.4} fell below the {TARGET} target \
         ({} of {} exact pairs recovered)",
        approx.len(),
        exact.len()
    );
}

#[test]
fn narrow_banding_recalls_planted_duplicates() {
    // At a high floor the surviving pairs are the planted near-duplicates;
    // the near-duplicate banding profile must recover almost all of them.
    const TARGET: f64 = 0.90;
    let dataset = product_workload();
    let (recall, approx, exact) = measured_recall(&dataset, 0.7, 16, 4);
    assert!(!exact.is_empty(), "no pairs above 0.7 — workload is degenerate");
    assert_subset(&approx, &exact);
    assert!(
        recall >= TARGET,
        "16x4 banding recall {recall:.4} fell below the {TARGET} target on duplicates"
    );
}

#[test]
fn wide_banding_recalls_the_paper_workload() {
    const TARGET: f64 = 0.80;
    let dataset = paper_workload();
    let (recall, approx, exact) = measured_recall(&dataset, 0.3, 64, 2);
    assert!(!exact.is_empty(), "exact join found nothing — workload is degenerate");
    assert_subset(&approx, &exact);
    assert!(
        recall >= TARGET,
        "64x2 banding recall {recall:.4} fell below the {TARGET} target on the paper workload"
    );
}

#[test]
fn more_bands_never_hurt_recall_on_the_same_workload() {
    // Monotonicity smoke: for fixed rows, adding bands only adds buckets,
    // so the candidate set can only grow.
    let dataset = product_workload();
    let (r8, a8, _) = measured_recall(&dataset, 0.4, 8, 2);
    let (r32, a32, _) = measured_recall(&dataset, 0.4, 32, 2);
    assert!(a32.len() >= a8.len(), "band growth shrank the candidate set");
    assert!(r32 >= r8, "band growth reduced recall: {r8:.4} -> {r32:.4}");
}
