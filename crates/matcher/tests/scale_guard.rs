//! Candidate-generation scale smoke: the 50k-record product workload must
//! complete in a debug build, and the strongly-filtered run must agree with
//! a weakly-filtered run of the same pipeline (different prefix lengths,
//! different posting lists — same candidates above the stronger floor).
//!
//! Run explicitly (CI has a dedicated step): `cargo test -p
//! crowdjoin-matcher --test scale_guard -- --ignored`. Exhaustive
//! brute-force equivalence at small sizes lives in
//! `tests/filter_equivalence.rs`; this guard is about *scale*.

use crowdjoin_matcher::{generate_candidates, MatcherConfig};
use crowdjoin_records::{generate_product, ProductGenConfig};

#[test]
#[ignore = "scale smoke — run via `cargo test -p crowdjoin-matcher --test scale_guard -- --ignored` (CI perf-smoke step)"]
fn product_50k_completes_and_filter_levels_agree() {
    let dataset = generate_product(&ProductGenConfig::scaled(25_000));
    assert_eq!(dataset.len(), 50_000);

    let matcher_at = |floor: f64| MatcherConfig {
        min_likelihood: floor,
        field_weights: vec![1.0, 0.25],
        ..MatcherConfig::for_arity(2)
    };
    // The 0.35 run prunes with tight prefixes; the 0.25 run with loose
    // ones. Above 0.35 they index different posting subsets yet must
    // produce the identical candidate list.
    let strong = generate_candidates(&dataset, &matcher_at(0.35));
    let weak = generate_candidates(&dataset, &matcher_at(0.25));
    assert!(!strong.is_empty(), "50k workload should keep some candidates at 0.35");
    assert!(weak.len() > strong.len(), "looser floor must keep more candidates");

    let weak_above: Vec<_> = weak.into_iter().filter(|c| c.likelihood >= 0.35).collect();
    assert_eq!(
        strong.len(),
        weak_above.len(),
        "filter strength changed the candidate set above the shared floor"
    );
    for (s, w) in strong.iter().zip(weak_above.iter()) {
        assert_eq!((s.a, s.b), (w.a, w.b));
        assert_eq!(s.likelihood.to_bits(), w.likelihood.to_bits());
    }
}
