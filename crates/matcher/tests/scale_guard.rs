//! Candidate-generation scale smokes: the 50k- and 200k-record product
//! workloads must complete in a **debug** build (the 200k arm under an
//! explicit wall-clock bound, so a quadratic regression in the filter
//! pipeline fails CI instead of hanging it), the strongly-filtered run
//! must agree with a weakly-filtered run of the same pipeline (different
//! prefix lengths, different posting lists — same candidates above the
//! stronger floor), and the MinHash/LSH strategy must complete and stay a
//! subset of the exact output.
//!
//! Run explicitly (CI has a dedicated step): `cargo test -p
//! crowdjoin-matcher --test scale_guard -- --ignored`. Exhaustive
//! brute-force equivalence at small sizes lives in
//! `tests/filter_equivalence.rs`; this guard is about *scale*.

use crowdjoin_matcher::{generate_candidates, MatcherConfig, MatcherStrategy};
use crowdjoin_records::{generate_product, ProductGenConfig};

#[test]
#[ignore = "scale smoke — run via `cargo test -p crowdjoin-matcher --test scale_guard -- --ignored` (CI perf-smoke step)"]
fn product_50k_completes_and_filter_levels_agree() {
    let dataset = generate_product(&ProductGenConfig::scaled(25_000));
    assert_eq!(dataset.len(), 50_000);

    let matcher_at = |floor: f64| MatcherConfig {
        min_likelihood: floor,
        field_weights: vec![1.0, 0.25],
        ..MatcherConfig::for_arity(2)
    };
    // The 0.35 run prunes with tight prefixes; the 0.25 run with loose
    // ones. Above 0.35 they index different posting subsets yet must
    // produce the identical candidate list.
    let strong = generate_candidates(&dataset, &matcher_at(0.35));
    let weak = generate_candidates(&dataset, &matcher_at(0.25));
    assert!(!strong.is_empty(), "50k workload should keep some candidates at 0.35");
    assert!(weak.len() > strong.len(), "looser floor must keep more candidates");

    let weak_above: Vec<_> = weak.into_iter().filter(|c| c.likelihood >= 0.35).collect();
    assert_eq!(
        strong.len(),
        weak_above.len(),
        "filter strength changed the candidate set above the shared floor"
    );
    for (s, w) in strong.iter().zip(weak_above.iter()) {
        assert_eq!((s.a, s.b), (w.a, w.b));
        assert_eq!(s.likelihood.to_bits(), w.likelihood.to_bits());
    }
}

#[test]
#[ignore = "scale smoke — run via `cargo test -p crowdjoin-matcher --test scale_guard -- --ignored` (CI scale-guard step)"]
fn product_200k_completes_within_bound_in_debug() {
    // Time-bounded scale guard: 200k records through the full exact
    // pipeline (positional + length filters) in an *unoptimized* build.
    // The bound is deliberately loose — the release build does 100k in
    // seconds, and debug is ~10× slower — so only an asymptotic
    // regression (e.g. the positional filter silently degrading to the
    // unfiltered quadratic scan) can blow it.
    let clock = std::time::Instant::now();
    let dataset = generate_product(&ProductGenConfig::scaled(100_000));
    assert_eq!(dataset.len(), 200_000);
    let config = MatcherConfig {
        min_likelihood: 0.4,
        field_weights: vec![1.0, 0.25],
        ..MatcherConfig::for_arity(2)
    };
    let out = generate_candidates(&dataset, &config);
    let elapsed = clock.elapsed();
    assert!(!out.is_empty(), "200k workload should keep candidates at 0.4");
    assert!(
        elapsed < std::time::Duration::from_secs(600),
        "200k debug-build run took {elapsed:?} — the filter pipeline has regressed asymptotically"
    );
}

#[test]
#[ignore = "scale smoke — run via `cargo test -p crowdjoin-matcher --test scale_guard -- --ignored` (CI scale-guard step)"]
fn product_50k_blocked_path_matches_auto() {
    // The blocked kernel at scale: force many small probe blocks (a 4k
    // block size tiles the 50k index side into ~13 blocks, vs auto's 8k)
    // and require the exact candidate list of the auto-blocked run, in a
    // debug build. A cursor-advance bug that only shows up when posting
    // lists actually straddle block boundaries — invisible at the
    // property-test sizes where one block covers everything — fails here.
    let dataset = generate_product(&ProductGenConfig::scaled(25_000));
    let config = MatcherConfig {
        min_likelihood: 0.35,
        field_weights: vec![1.0, 0.25],
        ..MatcherConfig::for_arity(2)
    };
    let auto = generate_candidates(&dataset, &config);
    let blocked =
        generate_candidates(&dataset, &MatcherConfig { block_records: 4096, ..config.clone() });
    assert!(!auto.is_empty(), "50k workload should keep candidates at 0.35");
    assert_eq!(auto.len(), blocked.len(), "block size changed the candidate set");
    for (a, b) in auto.iter().zip(blocked.iter()) {
        assert_eq!((a.a, a.b), (b.a, b.b));
        assert_eq!(a.likelihood.to_bits(), b.likelihood.to_bits());
    }
}

#[test]
#[ignore = "scale smoke — run via `cargo test -p crowdjoin-matcher --test scale_guard -- --ignored` (CI perf-smoke step)"]
fn lsh_50k_completes_and_stays_a_subset_of_exact() {
    // LSH smoke at scale: the banding path must complete on the 50k
    // product workload at a low floor and emit only pairs the exact path
    // also emits, with bit-identical likelihoods (collisions are exactly
    // re-scored; only recall is approximate).
    let dataset = generate_product(&ProductGenConfig::scaled(25_000));
    let exact_cfg = MatcherConfig {
        min_likelihood: 0.3,
        field_weights: vec![1.0, 0.25],
        ..MatcherConfig::for_arity(2)
    };
    let lsh_cfg = MatcherConfig {
        strategy: MatcherStrategy::Lsh { bands: 16, rows: 4 },
        ..exact_cfg.clone()
    };
    let exact = generate_candidates(&dataset, &exact_cfg);
    let approx = generate_candidates(&dataset, &lsh_cfg);
    assert!(!approx.is_empty(), "LSH should recover candidates on the 50k workload");
    let exact_of: std::collections::HashMap<(u32, u32), u64> =
        exact.iter().map(|c| ((c.a, c.b), c.likelihood.to_bits())).collect();
    for c in &approx {
        assert_eq!(
            exact_of.get(&(c.a, c.b)),
            Some(&c.likelihood.to_bits()),
            "LSH emitted a pair the exact path did not, or with drifted bits"
        );
    }
    // Full-set recall pins live in `tests/lsh_recall.rs`; at scale the
    // meaningful floor is on the *near-duplicate* subset — the 16x4
    // profile's knee sits at Jaccard ≈ 0.5, so pairs blending ≥ 0.7 (the
    // planted duplicates) must be recovered reliably even though the
    // moderate-similarity tail of the 0.3 candidate set is expendable.
    let dupes: Vec<_> = exact.iter().filter(|c| c.likelihood >= 0.7).cloned().collect();
    assert!(!dupes.is_empty(), "workload should plant near-duplicates above 0.7");
    let full_recall = crowdjoin_matcher::recall_of(&approx, &exact);
    let dupe_recall = crowdjoin_matcher::recall_of(&approx, &dupes);
    println!(
        "lsh 50k smoke: full recall {full_recall:.4}, >=0.7-likelihood recall {dupe_recall:.4} \
         ({} of {} pairs)",
        approx.len(),
        exact.len()
    );
    // Measured 0.80 at this code version (deterministic); the bar leaves
    // margin for intentional retunes of the hash family or generators.
    assert!(
        dupe_recall > 0.75,
        "16x4 banding recovered only {dupe_recall:.3} of near-duplicates on the 50k workload"
    );
}
