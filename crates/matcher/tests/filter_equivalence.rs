//! Property: the prefix-filtered candidate generator is **bit-identical**
//! to the brute-force oracle on its contract — every joinable pair that
//! shares at least one token and clears `min_likelihood` — across random
//! datasets (self joins and cross joins), pruning floors, blend weights,
//! field weights, extra measures, and worker-thread counts.
//!
//! The brute-force scan also emits qualifying pairs that share *no* token
//! (two empty records score Jaccard 1, and extra measures can clear the
//! floor alone); those are outside the generation contract ("the extra
//! measures refine the likelihood, they don't create candidates"), so the
//! oracle side is restricted to token-sharing pairs before comparing.

use crowdjoin_matcher::{
    generate_candidates, generate_candidates_bruteforce, ExtraMeasure, FieldMeasure, MatcherConfig,
    MatcherStrategy, ScoredCandidate, TokenizedCorpus,
};
use crowdjoin_records::{
    generate_paper, generate_product, ClusterSpec, Dataset, PaperGenConfig, PerturbConfig,
    ProductGenConfig,
};
use proptest::prelude::*;

/// `true` when the sorted token sets intersect.
fn shares_token(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

fn dataset_for(kind: u64, n: usize, seed: u64) -> Dataset {
    match kind % 3 {
        0 => generate_paper(&PaperGenConfig {
            num_records: n,
            clusters: ClusterSpec::PowerLaw {
                alpha: 1.9,
                max_size: (n / 5).max(2),
                force_max: false,
            },
            perturb: PerturbConfig::heavy(),
            sibling_probability: 0.2,
            seed,
        }),
        1 => generate_product(&ProductGenConfig {
            table_a: n / 2,
            table_b: n - n / 2,
            clusters: ClusterSpec::Explicit(vec![(2, n / 6)]),
            perturb: PerturbConfig::heavy(),
            seed,
        }),
        _ => generate_product(&ProductGenConfig {
            table_a: n / 3,
            table_b: n - n / 3,
            clusters: ClusterSpec::Explicit(vec![(3, n / 9), (2, n / 10)]),
            perturb: PerturbConfig::light(),
            seed,
        }),
    }
}

fn field_weight_of(code: u64) -> f64 {
    [1.0, 0.25, 2.0, 0.0][code as usize % 4]
}

fn check_equivalence(dataset: &Dataset, config: &MatcherConfig) -> Result<(), TestCaseError> {
    let fast = generate_candidates(dataset, config);
    let slow_all = generate_candidates_bruteforce(dataset, config);
    let corpus = TokenizedCorpus::build(dataset);
    let slow: Vec<ScoredCandidate> = slow_all
        .into_iter()
        .filter(|c| shares_token(corpus.token_set(c.a as usize), corpus.token_set(c.b as usize)))
        .collect();
    prop_assert_eq!(
        fast.len(),
        slow.len(),
        "candidate count mismatch (floor {}, wc {}, wj {}, fw {:?}, extras {})",
        config.min_likelihood,
        config.cosine_weight,
        config.jaccard_weight,
        &config.field_weights,
        config.extra_measures.len()
    );
    for (f, s) in fast.iter().zip(slow.iter()) {
        prop_assert_eq!((f.a, f.b), (s.a, s.b));
        prop_assert_eq!(
            f.likelihood.to_bits(),
            s.likelihood.to_bits(),
            "likelihood drifted on ({}, {}): {} vs {}",
            f.a,
            f.b,
            f.likelihood,
            s.likelihood
        );
    }
    // Output contract: sorted by (a, b), no duplicates.
    for w in fast.windows(2) {
        prop_assert!((w[0].a, w[0].b) < (w[1].a, w[1].b));
    }
    Ok(())
}

proptest! {
    /// Random dataset/config sweep: self joins, cross joins, every floor.
    #[test]
    fn filtered_equals_bruteforce(
        kind in 0u64..3,
        n in 20usize..100,
        seed in proptest::prelude::any::<u64>(),
        floor in 0.0f64..1.0,
        wc in 0.0f64..1.5,
        wj in 0.0f64..1.5,
        fw_code in proptest::prelude::any::<u64>(),
        threads in 1usize..5,
        block_idx in 0usize..6,
    ) {
        // Block sizes straddle every regime: single-record blocks, tiny
        // blocks, 0 = auto, and a block larger than any dataset here
        // (degenerate unblocked). All must be output-invariant.
        let block_records = [1, 2, 3, 7, 0, 1 << 20][block_idx];
        let dataset = dataset_for(kind, n, seed);
        let arity = dataset.table.schema().arity();
        let (wc, wj) = if wc + wj == 0.0 { (0.6, 0.4) } else { (wc, wj) };
        let config = MatcherConfig {
            min_likelihood: floor,
            cosine_weight: wc,
            jaccard_weight: wj,
            field_weights: (0..arity).map(|f| field_weight_of(fw_code >> (2 * f))).collect(),
            extra_measures: Vec::new(),
            threads,
            block_records,
            strategy: MatcherStrategy::Exact,
        };
        // At least one field must carry token weight for the tf-idf build
        // to be meaningful; force field 0 on when the code zeroed them all.
        let config = if config.field_weights.iter().all(|&w| w == 0.0) {
            MatcherConfig { field_weights: std::iter::once(1.0).chain(std::iter::repeat_n(0.0, arity - 1)).collect(), ..config }
        } else {
            config
        };
        check_equivalence(&dataset, &config)?;
    }

    /// Extra measures shift likelihoods (and weaken the prefilter threshold
    /// `t = (min_l·W − E)/(wc+wj)`, including below 0); equivalence must
    /// hold throughout.
    #[test]
    fn filtered_equals_bruteforce_with_extras(
        kind in 1u64..3, // product datasets: field 1 is a numeric price
        n in 20usize..80,
        seed in proptest::prelude::any::<u64>(),
        floor in 0.0f64..0.6,
        extra_weight in 0.05f64..1.5,
    ) {
        let dataset = dataset_for(kind, n, seed);
        let config = MatcherConfig {
            min_likelihood: floor,
            field_weights: vec![1.0, 0.25],
            extra_measures: vec![ExtraMeasure {
                field: 1,
                measure: FieldMeasure::NumericRatio,
                weight: extra_weight,
            }],
            ..MatcherConfig::for_arity(2)
        };
        check_equivalence(&dataset, &config)?;
    }

    /// Floors right at the filter's decision boundaries (including 0 and
    /// values that make the prefilter threshold land exactly on common
    /// Jaccard rationals) stay lossless.
    #[test]
    fn boundary_floors_stay_lossless(
        kind in 0u64..3,
        n in 20usize..60,
        seed in proptest::prelude::any::<u64>(),
        floor_idx in 0usize..8,
    ) {
        let floor = [0.0, 0.05, 0.1, 0.125, 0.25, 1.0 / 3.0, 0.5, 1.0][floor_idx];
        let dataset = dataset_for(kind, n, seed);
        let arity = dataset.table.schema().arity();
        let config = MatcherConfig { min_likelihood: floor, ..MatcherConfig::for_arity(arity) };
        check_equivalence(&dataset, &config)?;
    }

    /// The positional and length filters fire hardest on skewed set sizes
    /// at mid/high floors: synthesize records whose token counts span two
    /// orders of magnitude (so `|b| < t·|a|` actually prunes postings and
    /// the per-probe positional bound tightens below `jac_cut`), and pin
    /// bit-identity against the oracle across floors and thread counts.
    #[test]
    fn skewed_lengths_stay_lossless(
        n in 30usize..90,
        seed in proptest::prelude::any::<u64>(),
        floor_idx in 0usize..5,
        threads in 1usize..5,
        block_idx in 0usize..4,
    ) {
        use crowdjoin_records::{Dataset, Record, Schema, Table};
        let floor = [0.1, 0.25, 1.0 / 3.0, 0.5, 0.75][floor_idx];
        let block_records = [0, 1, 5, 1 << 20][block_idx];
        let mut table = Table::new(Schema::new(vec!["name"]));
        for i in 0..n {
            // Length pattern 1..~40 tokens drawn from a small shared pool,
            // keyed off the seed so proptest explores distinct overlaps.
            let len = 1 + (i * 7 + (seed as usize) % 13) % 40;
            let words: Vec<String> =
                (0..len).map(|j| format!("w{}", (i * 3 + j * 5 + seed as usize) % 60)).collect();
            table.push(Record::new(vec![words.join(" ")]));
        }
        let dataset = Dataset {
            table,
            entity_of: (0..n as u32).collect(),
            split: if seed.is_multiple_of(2) { Some(n / 2) } else { None },
            name: "skew".into(),
        };
        let config = MatcherConfig {
            min_likelihood: floor,
            threads,
            block_records,
            ..MatcherConfig::for_arity(1)
        };
        check_equivalence(&dataset, &config)?;
    }
}

/// Deterministic cross-check of the blocked kernel and every parallel build
/// stage at once: one self join and one cross join, swept over block sizes
/// and thread counts (including 4, which CI pins on every push). Every
/// combination must produce the same bytes as the `threads: 1`,
/// single-block reference run.
#[test]
fn blocked_and_threaded_runs_are_bit_identical() {
    for kind in [0u64, 1] {
        let dataset = dataset_for(kind, 120, 0xB10C);
        let arity = dataset.table.schema().arity();
        let reference = generate_candidates(
            &dataset,
            &MatcherConfig {
                min_likelihood: 0.2,
                threads: 1,
                block_records: 1 << 20,
                ..MatcherConfig::for_arity(arity)
            },
        );
        assert!(!reference.is_empty(), "test setup: the join must find pairs");
        for block_records in [0, 1, 3, 16, 64] {
            for threads in [1, 2, 4] {
                let run = generate_candidates(
                    &dataset,
                    &MatcherConfig {
                        min_likelihood: 0.2,
                        threads,
                        block_records,
                        ..MatcherConfig::for_arity(arity)
                    },
                );
                assert_eq!(
                    run.len(),
                    reference.len(),
                    "kind {kind} blocks {block_records} threads {threads}"
                );
                for (r, s) in run.iter().zip(reference.iter()) {
                    assert_eq!((r.a, r.b), (s.a, s.b));
                    assert_eq!(r.likelihood.to_bits(), s.likelihood.to_bits());
                }
            }
        }
    }
}
