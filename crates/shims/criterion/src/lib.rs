//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build container has no registry access, so this shim implements the
//! surface the workspace's benches use — `Criterion::bench_function`,
//! `benchmark_group` (with `sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each benchmark auto-calibrates an iteration count to
//! roughly [`TARGET_SAMPLE_MS`] per sample, takes `sample_size` samples, and
//! prints min/median/mean per-iteration times. No plots, no statistics
//! beyond that — swap in real criterion when a registry is available.
//!
//! Filtering: a single CLI argument (as passed by `cargo bench -- <filter>`)
//! restricts runs to benchmark ids containing the filter substring.
//! `--bench`/`--test` harness flags are accepted and ignored.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Target wall-clock per sample used by iteration-count calibration.
pub const TARGET_SAMPLE_MS: u64 = 40;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    #[must_use]
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only form.
    #[must_use]
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the calibrated iteration count, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate: grow the iteration count until one batch takes long enough.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(TARGET_SAMPLE_MS) || iters >= 1 << 24 {
            break;
        }
        // Aim straight for the target with headroom, at least doubling.
        let scale = (TARGET_SAMPLE_MS as f64 * 1.2)
            / b.elapsed.as_secs_f64().max(1e-9).mul_add(1000.0, 0.0);
        iters = (iters as f64 * scale.clamp(2.0, 100.0)).ceil() as u64;
    }

    let mut per_iter: Vec<f64> = (0..sample_size.max(2))
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "bench: {id:<60} min {:>12}  median {:>12}  mean {:>12}  ({} samples x {} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        per_iter.len(),
        iters,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// The benchmark manager: registers and runs benchmarks.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` forwards harness args; ignore flags.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    fn enabled(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if self.enabled(id) {
            run_one(id, 10, &mut f);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.into(), sample_size: 10 }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        if self.parent.enabled(&full) {
            run_one(&full, self.sample_size, &mut f);
        }
        self
    }

    /// Benchmarks a function against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        if self.parent.enabled(&full) {
            run_one(&full, self.sample_size, &mut |b| f(b, input));
        }
        self
    }

    /// Ends the group (printing is immediate in this shim; this is a no-op
    /// kept for API compatibility).
    pub fn finish(self) {}
}

/// Prevents the optimizer from eliding a value (re-export convenience; the
/// workspace's benches use `std::hint::black_box` directly).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function running the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }

    #[test]
    fn fmt_time_scales() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with('s'));
    }

    #[test]
    fn bencher_measures() {
        let mut c = Criterion { filter: Some("never-matches".into()) };
        // Disabled by filter: closure must not run.
        c.bench_function("skipped", |_| panic!("should be filtered out"));
    }
}
