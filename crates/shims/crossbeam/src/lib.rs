//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::unbounded` is used in this workspace (by the
//! `async_labeling` example); `std::sync::mpsc` provides the identical
//! `send`/`recv` surface, so the shim simply re-exports it.

#![forbid(unsafe_code)]

/// Multi-producer channels (`crossbeam::channel` subset).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender};

    /// Creates an unbounded MPSC channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trip() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        tx.send(5).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
