//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so this shim provides the
//! exact API surface the workspace consumes — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`RngExt::random_range`], and
//! [`seq::SliceRandom::shuffle`] — backed by a deterministic SplitMix64
//! stream. Distribution quality is more than adequate for seeded shuffles
//! and test-data generation; swap in the real crate when a registry is
//! available (the API is signature-compatible for everything used here).

#![forbid(unsafe_code)]

/// Base random-number-generator trait: a source of uniform 64-bit words.
pub trait Rng {
    /// Returns the next 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit output.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Extension methods over [`Rng`] (the rand 0.10 surface the workspace uses).
pub trait RngExt: Rng {
    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        next_f64(self) < p
    }
}

impl<R: Rng> RngExt for R {}

fn next_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + next_f64(rng) * (self.end - self.start)
    }
}

/// Seedable construction (rand's `SeedableRng`, `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic generator (SplitMix64 core in this shim; the real
    /// `StdRng` is ChaCha-based, but no caller here depends on the exact
    /// stream, only on seed determinism).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed ^ 0x5851_f42d_4c95_7f2d }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Sequence helpers (rand's `seq` module, `shuffle` only).
pub mod seq {
    use super::{Rng, SampleRange};

    /// Slice shuffling.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seed_determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.random_range(0u64..1 << 40), b.random_range(0u64..1 << 40));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = r.random_range(10..20);
            assert!((10..20).contains(&x));
            let f: f64 = r.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
