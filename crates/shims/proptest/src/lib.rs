//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so this shim implements the
//! property-testing surface the workspace uses: the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`/`prop_flat_map`/`prop_filter`, [`any`] for a
//! few `Arbitrary` types, numeric-range and simple regex-class string
//! strategies, tuple composition, `collection::{vec, btree_set}`,
//! [`sample::Index`], and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberate for an offline shim:
//!
//! * **No shrinking.** A failing case reports its case number and seed; rerun
//!   with `PROPTEST_SEED` to reproduce.
//! * **Deterministic by default.** Seeds derive from the test name, so CI is
//!   stable; set `PROPTEST_SEED` to explore a different stream and
//!   `PROPTEST_CASES` to change the per-test case count (default 256).
//! * **String strategies** support exactly the `"[class]{m,n}"` pattern shape
//!   used in this workspace, not full regex syntax.

#![forbid(unsafe_code)]

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the generator for one test case.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// FNV-1a over a string — used to derive a per-test seed from its name.
#[must_use]
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Config and errors
// ---------------------------------------------------------------------------

/// Per-test configuration (`cases` only in this shim).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Effective case count: `PROPTEST_CASES` env override, else `self.cases`.
    #[must_use]
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property within a test case (returned by `prop_assert*`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy `f`
    /// builds out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing the predicate (regenerating up to a bounded
    /// number of attempts).
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence: whence.into(), f }
    }

    /// Boxes the strategy (API-compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: std::rc::Rc::new(self) }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive values: {}", self.whence);
    }
}

/// A reference-counted, type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { inner: self.inner.clone() }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Constant strategy: always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

// Numeric ranges.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

// Tuple composition.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// String "regex" strategies: the `[class]{m,n}` shape only.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_pattern(self).unwrap_or_else(|| {
            panic!(
                "unsupported string strategy pattern {self:?} (shim supports \"[class]{{m,n}}\")"
            )
        });
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len).map(|_| alphabet[rng.below(alphabet.len() as u64) as usize]).collect()
    }
}

/// Parses `"[class]{m,n}"` into (alphabet, m, n). Supports `a-z` ranges,
/// escaped `\n`/`\"`/`\\`, and literal characters.
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let (class, tail) = rest.split_at(close);
    let tail = tail.strip_prefix(']')?;
    let bounds = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = bounds.split_once(',')?;
    let (min, max): (usize, usize) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
    if max < min {
        return None;
    }

    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\\' && i + 1 < chars.len() {
            alphabet.push(match chars[i + 1] {
                'n' => '\n',
                't' => '\t',
                other => other,
            });
            i += 2;
        } else if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (c, chars[i + 2]);
            if (a as u32) > (b as u32) {
                return None;
            }
            for code in a as u32..=b as u32 {
                alphabet.push(char::from_u32(code)?);
            }
            i += 3;
        } else {
            alphabet.push(c);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, min, max))
}

// ---------------------------------------------------------------------------
// Arbitrary / any
// ---------------------------------------------------------------------------

/// Types with a canonical generation strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

/// Strategy for an [`Arbitrary`] type — see [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

// ---------------------------------------------------------------------------
// sample
// ---------------------------------------------------------------------------

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// A length-independent index: a fraction that resolves against any
    /// concrete collection length via [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Index(f64);

    impl Index {
        /// Resolves against a collection of `len` elements.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.0 * len as f64) as usize).min(len - 1)
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_f64())
        }
    }
}

// ---------------------------------------------------------------------------
// collection
// ---------------------------------------------------------------------------

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Anything usable as a size specification: a fixed size or a range.
    pub trait SizeRange {
        /// Draws a concrete size.
        fn draw(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn draw(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of `element` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with the given element strategy and size spec.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Strategy producing `BTreeSet`s. If element collisions keep the set
    /// below the drawn size after bounded attempts, a smaller set is
    /// returned (the workspace's element domains are far larger than the
    /// requested sizes, so this is theoretical).
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for BTreeSetStrategy<S, Z>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.draw(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 20 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// `BTreeSet` strategy with the given element strategy and size spec.
    pub fn btree_set<S: Strategy, Z: SizeRange>(element: S, size: Z) -> BTreeSetStrategy<S, Z>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Property-test macro. Mirrors real proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..100, (a, b) in pair_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = config.effective_cases();
                let base_seed = ::std::env::var("PROPTEST_SEED")
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| $crate::fnv1a(concat!(module_path!(), "::", stringify!($name))));
                for case in 0..cases {
                    let case_seed = base_seed
                        .wrapping_add((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                    let mut __proptest_rng = $crate::TestRng::new(case_seed);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {case}/{cases} (seed {case_seed}) failed: {e}\n\
                             rerun with PROPTEST_SEED={base_seed} to reproduce the stream"
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// The conventional glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn class_pattern_parsing() {
        let (alpha, min, max) = super::parse_class_pattern("[a-c]{1,3}").unwrap();
        assert_eq!(alpha, vec!['a', 'b', 'c']);
        assert_eq!((min, max), (1, 3));
        let (alpha, _, _) = super::parse_class_pattern("[ -~\n\"]{0,12}").unwrap();
        assert!(alpha.contains(&' ') && alpha.contains(&'~') && alpha.contains(&'\n'));
        assert!(super::parse_class_pattern("plain").is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 0.25f64..0.75, s in "[a-f]{2,5}") {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!(s.len() >= 2 && s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='f').contains(&c)));
        }

        #[test]
        fn collections_and_tuples(
            v in crate::collection::vec(0u32..50, 2..6),
            set in crate::collection::btree_set(0u32..1000, 1..8),
            (a, b) in (0u32..4, Just(7u8)),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(!set.is_empty());
            prop_assert!(a < 4);
            prop_assert_eq!(b, 7u8);
        }

        #[test]
        fn flat_map_and_filter(
            (n, k) in (1usize..20).prop_flat_map(|n| (Just(n), 0usize..20))
                .prop_filter("k below n", |&(n, k)| k < n),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(k < n);
            prop_assert!(idx.index(n) < n);
        }
    }
}
