//! The incremental **ClusterGraph** (Section 3.2 of the paper).
//!
//! Matching edges are contracted with union–find; non-matching edges are kept
//! between the contracted clusters. Deduction then becomes:
//!
//! * same cluster → deducible as *matching* (a matching-only path exists);
//! * different clusters with a direct cluster edge → deducible as
//!   *non-matching* (a path with exactly one non-matching edge exists);
//! * otherwise → not deducible.
//!
//! # Complexity
//!
//! `deduce` costs two `find`s plus one hash probe — O(α(n)) amortized.
//! `insert` of a matching edge merges two clusters; the smaller *adjacency
//! set* is migrated into the larger one (independently of which component
//! wins the union-by-size), so the total edge-migration work over any
//! insertion sequence is O(E log E). This is done through a root→slot
//! indirection: adjacency sets store stable *slot* ids, and a merge only
//! rewrites the entries of the smaller set.

use crate::{EdgeLabel, UnionFind};
use crowdjoin_util::FxHashSet;

/// Error returned by [`ClusterGraph::insert`] when the attempted label
/// contradicts what the graph already deduces for that pair.
///
/// With a perfect answer source this never happens (the labeling framework
/// only crowdsources pairs that are not deducible), but noisy crowd answers
/// can produce contradictions; callers decide the resolution policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConflictError {
    /// First object of the conflicting pair.
    pub a: u32,
    /// Second object of the conflicting pair.
    pub b: u32,
    /// The label already deducible from the graph.
    pub deduced: EdgeLabel,
    /// The label the caller attempted to insert.
    pub attempted: EdgeLabel,
}

impl std::fmt::Display for ConflictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "label conflict on pair ({}, {}): graph deduces {}, attempted {}",
            self.a, self.b, self.deduced, self.attempted
        )
    }
}

impl std::error::Error for ConflictError {}

/// Outcome of a successful [`ClusterGraph::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The edge added new information to the graph.
    Inserted,
    /// The pair was already deducible with the same label; nothing changed.
    Redundant,
}

/// Outcome of a successful [`ClusterGraph::insert_tracked`], describing the
/// structural change in terms of adjacency *slots* so that layers indexing
/// per-cluster state (e.g. the engine's incremental closure) can update
/// themselves without rescans.
///
/// Slots are the stable cluster identifiers used by the adjacency sets; the
/// slot of an object's current cluster is [`ClusterGraph::slot_of`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrackedInsert {
    /// The pair was already deducible with the same label; nothing changed.
    Redundant,
    /// A non-matching cluster edge was added between two existing clusters.
    NonMatchingEdge {
        /// Slot of the first cluster.
        slot_a: u32,
        /// Slot of the second cluster.
        slot_b: u32,
    },
    /// Two clusters merged (a matching label).
    Merge {
        /// Slot identifying the surviving cluster.
        kept_slot: u32,
        /// Slot of the absorbed cluster; no longer identifies any cluster
        /// after this event.
        dropped_slot: u32,
        /// Slots that were adjacent to the dropped cluster but **not** to
        /// the kept cluster before the merge — the cluster edges the merge
        /// added to the kept cluster.
        new_neighbors: Vec<u32>,
    },
}

/// Incremental transitive-deduction structure over objects `0..n`.
#[derive(Debug, Clone)]
pub struct ClusterGraph {
    uf: UnionFind,
    /// Root object id → adjacency slot. Only meaningful for current roots.
    slot_of_root: Vec<u32>,
    /// Slot → set of neighbor slots connected by ≥1 non-matching pair.
    adj: Vec<FxHashSet<u32>>,
    /// Number of distinct cluster-level non-matching edges.
    cluster_edges: usize,
    /// Count of matching labels inserted (non-redundant).
    matching_inserted: usize,
    /// Count of non-matching labels inserted (non-redundant).
    nonmatching_inserted: usize,
}

impl ClusterGraph {
    /// Creates a graph over `n` isolated objects with ids `0..n`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            uf: UnionFind::new(n),
            slot_of_root: (0..n as u32).collect(),
            adj: vec![FxHashSet::default(); n],
            cluster_edges: 0,
            matching_inserted: 0,
            nonmatching_inserted: 0,
        }
    }

    /// Number of objects in the universe.
    #[must_use]
    pub fn num_objects(&self) -> usize {
        self.uf.len()
    }

    /// Number of clusters (union–find components), counting isolated objects.
    #[must_use]
    pub fn num_clusters(&self) -> usize {
        self.uf.num_components()
    }

    /// Number of distinct cluster-level non-matching edges.
    #[must_use]
    pub fn num_cluster_edges(&self) -> usize {
        self.cluster_edges
    }

    /// Non-redundant matching labels inserted so far.
    #[must_use]
    pub fn matching_inserted(&self) -> usize {
        self.matching_inserted
    }

    /// Non-redundant non-matching labels inserted so far.
    #[must_use]
    pub fn nonmatching_inserted(&self) -> usize {
        self.nonmatching_inserted
    }

    /// Extends the universe with a new isolated object, returning its id.
    pub fn push_object(&mut self) -> u32 {
        let id = self.uf.push();
        self.slot_of_root.push(id);
        self.adj.push(FxHashSet::default());
        id
    }

    /// Attempts to deduce the label of `(a, b)` from the inserted edges.
    ///
    /// Returns `None` when the pair is not deducible (every path between the
    /// objects would need more than one non-matching edge).
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn deduce(&mut self, a: u32, b: u32) -> Option<EdgeLabel> {
        let ra = self.uf.find(a);
        let rb = self.uf.find(b);
        if ra == rb {
            return Some(EdgeLabel::Matching);
        }
        let sa = self.slot_of_root[ra as usize];
        let sb = self.slot_of_root[rb as usize];
        if self.adj[sa as usize].contains(&sb) {
            Some(EdgeLabel::NonMatching)
        } else {
            None
        }
    }

    /// Read-only deduction (no path compression). Prefer [`Self::deduce`] on
    /// hot paths; this exists for callers holding only `&self`.
    #[must_use]
    pub fn deduce_readonly(&self, a: u32, b: u32) -> Option<EdgeLabel> {
        let ra = self.uf.find_immutable(a);
        let rb = self.uf.find_immutable(b);
        if ra == rb {
            return Some(EdgeLabel::Matching);
        }
        let sa = self.slot_of_root[ra as usize];
        let sb = self.slot_of_root[rb as usize];
        if self.adj[sa as usize].contains(&sb) {
            Some(EdgeLabel::NonMatching)
        } else {
            None
        }
    }

    /// Inserts the labeled pair `(a, b)`.
    ///
    /// * If the pair is already deducible with the same label, returns
    ///   `Ok(InsertOutcome::Redundant)` and changes nothing.
    /// * If it is deducible with the *opposite* label, returns a
    ///   [`ConflictError`] and changes nothing — the caller chooses whether to
    ///   trust the deduction or the new answer.
    /// * Otherwise records the edge and returns `Ok(InsertOutcome::Inserted)`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (a pair must relate two distinct objects) or if an
    /// id is out of range.
    pub fn insert(
        &mut self,
        a: u32,
        b: u32,
        label: EdgeLabel,
    ) -> Result<InsertOutcome, ConflictError> {
        self.insert_tracked(a, b, label).map(|t| match t {
            TrackedInsert::Redundant => InsertOutcome::Redundant,
            _ => InsertOutcome::Inserted,
        })
    }

    /// [`Self::insert`] with a structural change report — see
    /// [`TrackedInsert`]. Same contract as `insert` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or an id is out of range.
    pub fn insert_tracked(
        &mut self,
        a: u32,
        b: u32,
        label: EdgeLabel,
    ) -> Result<TrackedInsert, ConflictError> {
        assert_ne!(a, b, "a pair must relate two distinct objects");
        match self.deduce(a, b) {
            Some(deduced) if deduced == label => Ok(TrackedInsert::Redundant),
            Some(deduced) => Err(ConflictError { a, b, deduced, attempted: label }),
            None => Ok(match label {
                EdgeLabel::Matching => self.insert_matching(a, b),
                EdgeLabel::NonMatching => self.insert_nonmatching(a, b),
            }),
        }
    }

    /// The adjacency *slot* currently identifying the cluster of object `x`.
    ///
    /// Stable until a merge involving the cluster; merge events
    /// ([`TrackedInsert::Merge`]) describe slot transitions.
    pub fn slot_of(&mut self, x: u32) -> u32 {
        let r = self.uf.find(x);
        self.slot_of_root[r as usize]
    }

    /// Like [`Self::slot_of`] without path compression (no `&mut` needed;
    /// read-mostly callers such as frontier scoring use this).
    #[must_use]
    pub fn slot_of_readonly(&self, x: u32) -> u32 {
        let r = self.uf.find_immutable(x);
        self.slot_of_root[r as usize]
    }

    /// `true` when the clusters identified by `slot_a` and `slot_b` are
    /// connected by a non-matching cluster edge.
    #[must_use]
    pub fn slots_adjacent(&self, slot_a: u32, slot_b: u32) -> bool {
        self.adj[slot_a as usize].contains(&slot_b)
    }

    /// Slots connected to `slot` by a non-matching cluster edge, in
    /// adjacency-set iteration order (deterministic for a fixed insert
    /// history).
    pub fn slot_neighbors(&self, slot: u32) -> impl Iterator<Item = u32> + '_ {
        self.adj[slot as usize].iter().copied()
    }

    /// Merges the clusters of `a` and `b`. Caller guarantees they are in
    /// different clusters with no cluster edge between them (checked by
    /// `insert` via `deduce`).
    fn insert_matching(&mut self, a: u32, b: u32) -> TrackedInsert {
        let (winner, absorbed) =
            self.uf.union(a, b).expect("insert_matching called for objects already in one cluster");
        let sw = self.slot_of_root[winner as usize];
        let sa = self.slot_of_root[absorbed as usize];
        // Migrate the smaller adjacency set, independent of which component
        // won the union: slots are stable, so only the moved set's entries
        // (and its neighbors' back-references) need rewriting.
        let (keep, drop) = if self.adj[sw as usize].len() >= self.adj[sa as usize].len() {
            (sw, sa)
        } else {
            (sa, sw)
        };
        let moved = std::mem::take(&mut self.adj[drop as usize]);
        let mut new_neighbors = Vec::new();
        for t in moved {
            debug_assert_ne!(t, keep, "edge between merging clusters must have been a conflict");
            self.adj[t as usize].remove(&drop);
            if self.adj[keep as usize].insert(t) {
                self.adj[t as usize].insert(keep);
                new_neighbors.push(t);
            } else {
                // (keep, t) already existed: two parallel cluster edges
                // collapse into one.
                self.cluster_edges -= 1;
            }
        }
        self.slot_of_root[winner as usize] = keep;
        self.matching_inserted += 1;
        TrackedInsert::Merge { kept_slot: keep, dropped_slot: drop, new_neighbors }
    }

    /// Adds a cluster-level non-matching edge. Caller guarantees the clusters
    /// are distinct and not yet adjacent.
    fn insert_nonmatching(&mut self, a: u32, b: u32) -> TrackedInsert {
        let ra = self.uf.find(a);
        let rb = self.uf.find(b);
        let sa = self.slot_of_root[ra as usize];
        let sb = self.slot_of_root[rb as usize];
        let newly_a = self.adj[sa as usize].insert(sb);
        let newly_b = self.adj[sb as usize].insert(sa);
        debug_assert!(newly_a && newly_b, "insert_nonmatching called for adjacent clusters");
        self.cluster_edges += 1;
        self.nonmatching_inserted += 1;
        TrackedInsert::NonMatchingEdge { slot_a: sa, slot_b: sb }
    }

    /// Canonical clustering of all objects (each group sorted; groups sorted
    /// by first member).
    pub fn clusters(&mut self) -> Vec<Vec<u32>> {
        self.uf.clusters()
    }

    /// The cluster root of object `x` (stable only until the next matching
    /// insert).
    pub fn cluster_of(&mut self, x: u32) -> u32 {
        self.uf.find(x)
    }

    /// Size of the cluster containing `x`.
    pub fn cluster_size(&mut self, x: u32) -> u32 {
        self.uf.component_size(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_deducts_nothing() {
        let mut g = ClusterGraph::new(3);
        assert_eq!(g.deduce(0, 1), None);
        assert_eq!(g.deduce(1, 2), None);
        assert_eq!(g.num_clusters(), 3);
    }

    #[test]
    fn positive_transitivity_chain() {
        let mut g = ClusterGraph::new(4);
        g.insert(0, 1, EdgeLabel::Matching).unwrap();
        g.insert(1, 2, EdgeLabel::Matching).unwrap();
        g.insert(2, 3, EdgeLabel::Matching).unwrap();
        assert_eq!(g.deduce(0, 3), Some(EdgeLabel::Matching));
        assert_eq!(g.num_clusters(), 1);
    }

    #[test]
    fn negative_transitivity_single_hop() {
        let mut g = ClusterGraph::new(3);
        g.insert(0, 1, EdgeLabel::Matching).unwrap();
        g.insert(1, 2, EdgeLabel::NonMatching).unwrap();
        assert_eq!(g.deduce(0, 2), Some(EdgeLabel::NonMatching));
    }

    #[test]
    fn two_nonmatching_hops_not_deducible() {
        // o1 ≠ o2, o2 ≠ o3 tells us nothing about (o1, o3).
        let mut g = ClusterGraph::new(3);
        g.insert(0, 1, EdgeLabel::NonMatching).unwrap();
        g.insert(1, 2, EdgeLabel::NonMatching).unwrap();
        assert_eq!(g.deduce(0, 2), None);
    }

    #[test]
    fn paper_example_1() {
        // Figure 2: matching (o1,o2), (o3,o4), (o4,o5); non-matching
        // (o1,o6), (o2,o3), (o3,o7), (o5,o6). Objects renumbered to 0-based.
        let mut g = ClusterGraph::new(7);
        g.insert(0, 1, EdgeLabel::Matching).unwrap();
        g.insert(2, 3, EdgeLabel::Matching).unwrap();
        g.insert(3, 4, EdgeLabel::Matching).unwrap();
        g.insert(0, 5, EdgeLabel::NonMatching).unwrap();
        g.insert(1, 2, EdgeLabel::NonMatching).unwrap();
        g.insert(2, 6, EdgeLabel::NonMatching).unwrap();
        g.insert(4, 5, EdgeLabel::NonMatching).unwrap();
        // (o3,o5): matching path o3→o4→o5.
        assert_eq!(g.deduce(2, 4), Some(EdgeLabel::Matching));
        // (o5,o7): path with single non-matching pair.
        assert_eq!(g.deduce(4, 6), Some(EdgeLabel::NonMatching));
        // (o1,o7): every path has ≥2 non-matching pairs.
        assert_eq!(g.deduce(0, 6), None);
    }

    #[test]
    fn paper_example_3() {
        // Figure 6: after labeling p1..p7 of the running example, p8=(o5,o6)
        // deduces non-matching. 0-based: o1..o6 → 0..5.
        let mut g = ClusterGraph::new(6);
        g.insert(0, 1, EdgeLabel::Matching).unwrap(); // p1
        g.insert(1, 2, EdgeLabel::Matching).unwrap(); // p2
        g.insert(0, 5, EdgeLabel::NonMatching).unwrap(); // p3
        assert_eq!(g.deduce(0, 2), Some(EdgeLabel::Matching)); // p4 deduced
        g.insert(3, 4, EdgeLabel::Matching).unwrap(); // p5
        g.insert(3, 5, EdgeLabel::NonMatching).unwrap(); // p6
        g.insert(1, 3, EdgeLabel::NonMatching).unwrap(); // p7
        assert_eq!(g.deduce(4, 5), Some(EdgeLabel::NonMatching)); // p8
    }

    #[test]
    fn redundant_insert_reports_redundant() {
        let mut g = ClusterGraph::new(3);
        g.insert(0, 1, EdgeLabel::Matching).unwrap();
        g.insert(1, 2, EdgeLabel::Matching).unwrap();
        assert_eq!(g.insert(0, 2, EdgeLabel::Matching), Ok(InsertOutcome::Redundant));
        assert_eq!(g.matching_inserted(), 2);
    }

    #[test]
    fn conflicting_insert_is_rejected() {
        let mut g = ClusterGraph::new(3);
        g.insert(0, 1, EdgeLabel::Matching).unwrap();
        g.insert(1, 2, EdgeLabel::Matching).unwrap();
        let err = g.insert(0, 2, EdgeLabel::NonMatching).unwrap_err();
        assert_eq!(err.deduced, EdgeLabel::Matching);
        assert_eq!(err.attempted, EdgeLabel::NonMatching);
        // Graph unchanged.
        assert_eq!(g.deduce(0, 2), Some(EdgeLabel::Matching));
        assert_eq!(g.num_cluster_edges(), 0);
    }

    #[test]
    fn parallel_cluster_edges_collapse_on_merge() {
        // 0≠2 and 1≠2; then 0=1 merges clusters {0},{1} → the two edges to
        // {2} must collapse into one cluster edge.
        let mut g = ClusterGraph::new(3);
        g.insert(0, 2, EdgeLabel::NonMatching).unwrap();
        g.insert(1, 2, EdgeLabel::NonMatching).unwrap();
        assert_eq!(g.num_cluster_edges(), 2);
        g.insert(0, 1, EdgeLabel::Matching).unwrap();
        assert_eq!(g.num_cluster_edges(), 1);
        assert_eq!(g.deduce(0, 2), Some(EdgeLabel::NonMatching));
        assert_eq!(g.deduce(1, 2), Some(EdgeLabel::NonMatching));
    }

    #[test]
    fn push_object_extends_universe() {
        let mut g = ClusterGraph::new(2);
        let o = g.push_object();
        assert_eq!(o, 2);
        g.insert(0, o, EdgeLabel::Matching).unwrap();
        assert_eq!(g.deduce(0, 2), Some(EdgeLabel::Matching));
    }

    #[test]
    fn readonly_deduce_agrees() {
        let mut g = ClusterGraph::new(5);
        g.insert(0, 1, EdgeLabel::Matching).unwrap();
        g.insert(2, 3, EdgeLabel::NonMatching).unwrap();
        g.insert(1, 2, EdgeLabel::Matching).unwrap();
        for a in 0..5 {
            for b in (a + 1)..5 {
                assert_eq!(g.deduce_readonly(a, b), g.clone().deduce(a, b), "({a},{b})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "distinct objects")]
    fn self_pair_panics() {
        let mut g = ClusterGraph::new(2);
        let _ = g.insert(1, 1, EdgeLabel::Matching);
    }

    #[test]
    fn tracked_insert_reports_edges_and_merges() {
        let mut g = ClusterGraph::new(4);
        let s0 = g.slot_of(0);
        let s1 = g.slot_of(1);
        let s2 = g.slot_of(2);

        // Non-matching edge between {1} and {2}.
        let e = g.insert_tracked(1, 2, EdgeLabel::NonMatching).unwrap();
        assert_eq!(e, TrackedInsert::NonMatchingEdge { slot_a: s1, slot_b: s2 });
        assert!(g.slots_adjacent(s1, s2) && g.slots_adjacent(s2, s1));

        // Merge {0} into {1}: {1} has the larger adjacency set, so its slot
        // survives and {2} becomes newly adjacent to nothing (it already was
        // adjacent to the kept side).
        let m = g.insert_tracked(0, 1, EdgeLabel::Matching).unwrap();
        assert_eq!(
            m,
            TrackedInsert::Merge { kept_slot: s1, dropped_slot: s0, new_neighbors: vec![] }
        );
        assert_eq!(g.slot_of(0), s1);

        // Redundant insert reports Redundant.
        assert_eq!(g.insert_tracked(0, 2, EdgeLabel::NonMatching), Ok(TrackedInsert::Redundant));
    }

    #[test]
    fn tracked_merge_lists_new_neighbors() {
        // {0}≠{2}; merging {0}={1} where {1} has no edges: kept slot is 0's
        // (larger adjacency), no new neighbors. Then {3}≠{1} and merge
        // {1}={2}: the union brings 3's cluster in as a new neighbor of the
        // kept side.
        let mut g = ClusterGraph::new(4);
        g.insert(0, 2, EdgeLabel::NonMatching).unwrap();
        let s0 = g.slot_of(0);
        let s3 = g.slot_of(3);
        let m = g.insert_tracked(0, 1, EdgeLabel::Matching).unwrap();
        assert!(matches!(m, TrackedInsert::Merge { kept_slot, ref new_neighbors, .. }
            if kept_slot == s0 && new_neighbors.is_empty()));

        g.insert(1, 3, EdgeLabel::NonMatching).unwrap();
        // Sanity: deduction sees 3 adjacent to the whole merged cluster.
        assert_eq!(g.deduce(0, 3), Some(EdgeLabel::NonMatching));

        // Merge the {0,1} cluster with {2}'s neighbor? {2} is adjacent, so
        // merging 2 with 3 instead: cluster {3} (adjacent to {0,1}) absorbs
        // {2}'s adjacency (also adjacent to {0,1}) — parallel edges collapse,
        // no new neighbors.
        let m = g.insert_tracked(2, 3, EdgeLabel::Matching);
        // (2,3) is not deducible (both adjacent to {0,1} but not to each
        // other), so this merge is legal.
        let m = m.unwrap();
        assert!(matches!(m, TrackedInsert::Merge { ref new_neighbors, .. }
            if new_neighbors.is_empty()));
        assert_eq!(g.num_cluster_edges(), 1);
        let _ = s3;
    }

    #[test]
    fn tracked_merge_new_neighbor_propagates() {
        // {2}≠{1}; merge {0}={1}. Kept slot is 1's (larger adjacency); 0 has
        // none. Now add {3}≠{0}... instead: set up so the *dropped* side owns
        // an edge the kept side lacks.
        let mut g = ClusterGraph::new(4);
        g.insert(0, 2, EdgeLabel::NonMatching).unwrap(); // {0}–{2}
        g.insert(1, 3, EdgeLabel::NonMatching).unwrap(); // {1}–{3}
        let s2 = g.slot_of(2);
        let s3 = g.slot_of(3);
        let m = g.insert_tracked(0, 1, EdgeLabel::Matching).unwrap();
        match m {
            TrackedInsert::Merge { kept_slot, mut new_neighbors, .. } => {
                // Exactly one side migrated; its single edge is new.
                new_neighbors.sort_unstable();
                assert!(new_neighbors == vec![s2] || new_neighbors == vec![s3]);
                assert!(g.slots_adjacent(kept_slot, s2) && g.slots_adjacent(kept_slot, s3));
            }
            other => panic!("expected merge, got {other:?}"),
        }
    }
}
