//! Deduction substrate for crowdsourced joins.
//!
//! The paper's labeling framework (Wang et al., SIGMOD 2013) decides for every
//! candidate pair whether its label can be *deduced* from already-labeled
//! pairs via transitive relations:
//!
//! * positive transitivity: `a = b ∧ b = c ⇒ a = c`;
//! * negative transitivity: `a = b ∧ b ≠ c ⇒ a ≠ c`.
//!
//! Lemma 1 of the paper reduces deduction to a path property on the graph of
//! labeled pairs: `(o, o')` is deducible as matching iff some path from `o`
//! to `o'` uses only matching edges, and deducible as non-matching iff some
//! path uses exactly one non-matching edge. Enumerating paths is exponential,
//! so the paper introduces the **ClusterGraph**: matching edges are contracted
//! with a union–find structure and non-matching edges connect the contracted
//! clusters. This crate provides:
//!
//! * [`UnionFind`] — Tarjan union–find with path halving and union by size;
//! * [`ClusterGraph`] — the incremental deduction structure (the hot path of
//!   every labeler in `crowdjoin-core`);
//! * [`PathOracleGraph`] — a deliberately simple reference implementation of
//!   the Lemma 1 path semantics, used by tests to verify `ClusterGraph`.
//!
//! # Example
//!
//! ```
//! use crowdjoin_graph::{ClusterGraph, EdgeLabel};
//!
//! let mut g = ClusterGraph::new(5);
//! g.insert(0, 1, EdgeLabel::Matching).unwrap();
//! g.insert(1, 2, EdgeLabel::Matching).unwrap();
//! g.insert(2, 3, EdgeLabel::NonMatching).unwrap();
//!
//! assert_eq!(g.deduce(0, 2), Some(EdgeLabel::Matching));     // 0=1, 1=2
//! assert_eq!(g.deduce(0, 3), Some(EdgeLabel::NonMatching));  // 0=2, 2≠3
//! assert_eq!(g.deduce(0, 4), None);                          // unknown object
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster_graph;
mod path_oracle;
mod union_find;

pub use cluster_graph::{ClusterGraph, ConflictError, InsertOutcome, TrackedInsert};
pub use path_oracle::PathOracleGraph;
pub use union_find::UnionFind;

/// The label of an edge (a labeled object pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeLabel {
    /// The two objects refer to the same real-world entity.
    Matching,
    /// The two objects refer to different real-world entities.
    NonMatching,
}

impl EdgeLabel {
    /// `true` for [`EdgeLabel::Matching`].
    #[must_use]
    pub fn is_matching(self) -> bool {
        matches!(self, EdgeLabel::Matching)
    }
}

impl std::fmt::Display for EdgeLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeLabel::Matching => write!(f, "matching"),
            EdgeLabel::NonMatching => write!(f, "non-matching"),
        }
    }
}
