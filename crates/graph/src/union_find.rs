//! Union–find (disjoint-set forest) with path halving and union by size.
//!
//! This is the structure the paper cites as "Union-Find algorithm [20]"
//! (Tarjan, JACM 1975) for building the ClusterGraph. Amortized cost per
//! operation is O(α(n)), effectively constant.

/// Disjoint-set forest over dense ids `0..n`.
///
/// Ids are `u32` because entity-resolution candidate sets in this workspace
/// are bounded by the number of records (thousands), and 32-bit parent links
/// halve the memory traffic of the hot find loop (perf-book "smaller
/// integers" guidance).
#[derive(Debug, Clone)]
pub struct UnionFind {
    /// `parent[i]` is the parent of `i`; roots satisfy `parent[i] == i`.
    parent: Vec<u32>,
    /// `size[r]` is the component size; only meaningful for roots.
    size: Vec<u32>,
    /// Number of disjoint components.
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton components with ids `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u32::MAX as usize`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "UnionFind supports at most u32::MAX elements");
        Self { parent: (0..n as u32).collect(), size: vec![1; n], components: n }
    }

    /// Number of elements in the universe.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when the universe is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint components.
    #[must_use]
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Extends the universe with one new singleton and returns its id.
    pub fn push(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.size.push(1);
        self.components += 1;
        id
    }

    /// Finds the root of `x`, applying path halving.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize];
            // Path halving: point x at its grandparent and step there.
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Read-only root lookup without path compression (usable through `&self`;
    /// slightly slower than [`UnionFind::find`], used where interior
    /// mutability would be awkward).
    #[must_use]
    pub fn find_immutable(&self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// `true` when `a` and `b` are in the same component.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Unions the components of `a` and `b` by size.
    ///
    /// Returns `Some((winner_root, absorbed_root))` when two distinct
    /// components were merged, `None` when `a` and `b` were already connected.
    /// The winner is the larger component's root (ties favor `a`'s root); the
    /// caller can use the pair to migrate per-root satellite data.
    pub fn union(&mut self, a: u32, b: u32) -> Option<(u32, u32)> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return None;
        }
        let (winner, absorbed) =
            if self.size[ra as usize] >= self.size[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[absorbed as usize] = winner;
        self.size[winner as usize] += self.size[absorbed as usize];
        self.components -= 1;
        Some((winner, absorbed))
    }

    /// Size of the component containing `x`.
    pub fn component_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }

    /// Dense component labeling: returns `ids` with `ids[x]` a component
    /// index in `0..num_components()`, numbered by first occurrence (so the
    /// labeling is canonical for a given universe). This is the cheap bulk
    /// form of component extraction used by the execution engine's
    /// partitioner — one pass, no hashing.
    pub fn component_ids(&mut self) -> Vec<u32> {
        let n = self.parent.len();
        const UNASSIGNED: u32 = u32::MAX;
        let mut of_root = vec![UNASSIGNED; n];
        let mut ids = Vec::with_capacity(n);
        let mut next = 0u32;
        for x in 0..n as u32 {
            let r = self.find(x) as usize;
            if of_root[r] == UNASSIGNED {
                of_root[r] = next;
                next += 1;
            }
            ids.push(of_root[r]);
        }
        debug_assert_eq!(next as usize, self.components);
        ids
    }

    /// Groups all elements by root; returned groups are sorted internally and
    /// by their smallest member, giving a canonical clustering for tests and
    /// reporting.
    pub fn clusters(&mut self) -> Vec<Vec<u32>> {
        use crowdjoin_util::FxHashMap;
        let mut by_root: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for x in 0..self.parent.len() as u32 {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        let mut groups: Vec<Vec<u32>> = by_root.into_values().collect();
        for g in &mut groups {
            g.sort_unstable();
        }
        groups.sort_unstable_by_key(|g| g[0]);
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.len(), 4);
        assert_eq!(uf.num_components(), 4);
        for i in 0..4 {
            assert_eq!(uf.find(i), i);
            assert_eq!(uf.component_size(i), 1);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1).is_some());
        assert!(uf.union(1, 2).is_some());
        assert!(uf.union(0, 2).is_none(), "already connected");
        assert_eq!(uf.num_components(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.component_size(2), 3);
    }

    #[test]
    fn union_by_size_reports_winner() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1); // {0,1}
        uf.union(2, 3); // {2,3}
        uf.union(0, 2); // {0,1,2,3}
                        // Now union size-4 with singleton 4; winner must be the big root.
        let (winner, absorbed) = uf.union(4, 0).unwrap();
        assert_eq!(uf.find(4), winner);
        assert_eq!(uf.find(absorbed), winner);
        assert_eq!(uf.component_size(4), 5);
    }

    #[test]
    fn push_extends_universe() {
        let mut uf = UnionFind::new(2);
        let id = uf.push();
        assert_eq!(id, 2);
        assert_eq!(uf.len(), 3);
        assert_eq!(uf.num_components(), 3);
        uf.union(0, 2);
        assert!(uf.connected(0, 2));
    }

    #[test]
    fn clusters_are_canonical() {
        let mut uf = UnionFind::new(6);
        uf.union(5, 3);
        uf.union(1, 2);
        let clusters = uf.clusters();
        assert_eq!(clusters, vec![vec![0], vec![1, 2], vec![3, 5], vec![4]]);
    }

    #[test]
    fn component_ids_are_dense_and_canonical() {
        let mut uf = UnionFind::new(6);
        uf.union(5, 3);
        uf.union(1, 2);
        let ids = uf.component_ids();
        // First-occurrence numbering: 0→0, 1→1, 2→1, 3→2, 4→3, 5→2.
        assert_eq!(ids, vec![0, 1, 1, 2, 3, 2]);
        assert_eq!(ids.iter().copied().max().unwrap() as usize + 1, uf.num_components());
    }

    #[test]
    fn find_immutable_agrees_with_find() {
        let mut uf = UnionFind::new(10);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(3, 4);
        for x in 0..10 {
            assert_eq!(uf.find_immutable(x), uf.clone().find(x));
        }
    }

    #[test]
    fn empty_universe() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_components(), 0);
    }

    proptest! {
        /// Connectivity in union–find must equal reachability in the
        /// underlying undirected edge set.
        #[test]
        fn matches_naive_connectivity(edges in proptest::collection::vec((0u32..20, 0u32..20), 0..60)) {
            let n = 20usize;
            let mut uf = UnionFind::new(n);
            for &(a, b) in &edges {
                uf.union(a, b);
            }
            // Naive: BFS over adjacency.
            let mut adj = vec![vec![]; n];
            for &(a, b) in &edges {
                adj[a as usize].push(b);
                adj[b as usize].push(a);
            }
            let mut comp = vec![usize::MAX; n];
            let mut next = 0;
            for start in 0..n {
                if comp[start] != usize::MAX {
                    continue;
                }
                let mut queue = vec![start as u32];
                comp[start] = next;
                while let Some(x) = queue.pop() {
                    for &y in &adj[x as usize] {
                        if comp[y as usize] == usize::MAX {
                            comp[y as usize] = next;
                            queue.push(y);
                        }
                    }
                }
                next += 1;
            }
            for a in 0..n as u32 {
                for b in 0..n as u32 {
                    prop_assert_eq!(
                        uf.connected(a, b),
                        comp[a as usize] == comp[b as usize],
                        "disagreement on ({}, {})", a, b
                    );
                }
            }
            prop_assert_eq!(uf.num_components(), next);
        }

        /// Component sizes always sum to the universe size.
        #[test]
        fn sizes_partition_universe(edges in proptest::collection::vec((0u32..16, 0u32..16), 0..40)) {
            let mut uf = UnionFind::new(16);
            for &(a, b) in &edges {
                uf.union(a, b);
            }
            let clusters = uf.clusters();
            let total: usize = clusters.iter().map(Vec::len).sum();
            prop_assert_eq!(total, 16);
            prop_assert_eq!(clusters.len(), uf.num_components());
        }
    }
}
