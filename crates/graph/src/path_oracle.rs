//! A deliberately simple reference implementation of the Lemma 1 path
//! semantics, used to verify [`crate::ClusterGraph`].
//!
//! Deduction is answered straight from the definition: `(a, b)` is matching
//! iff a matching-only path connects them; non-matching iff some path uses
//! exactly one non-matching edge — equivalently, iff a non-matching edge
//! `(u, v)` exists with `u` matching-reachable from `a` and `v`
//! matching-reachable from `b` (or vice versa). Queries are O(V + E); this is
//! the *oracle*, not the production structure.

use crate::EdgeLabel;

/// Labeled-pair graph answering deduction queries by breadth-first search.
#[derive(Debug, Clone)]
pub struct PathOracleGraph {
    n: usize,
    /// Matching adjacency lists.
    matching_adj: Vec<Vec<u32>>,
    /// All non-matching edges, as inserted.
    nonmatching_edges: Vec<(u32, u32)>,
}

impl PathOracleGraph {
    /// Creates an oracle over objects `0..n`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { n, matching_adj: vec![Vec::new(); n], nonmatching_edges: Vec::new() }
    }

    /// Number of objects.
    #[must_use]
    pub fn num_objects(&self) -> usize {
        self.n
    }

    /// Records a labeled pair. No consistency checking: the oracle represents
    /// exactly the set of labeled edges it was given.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range or `a == b`.
    pub fn insert(&mut self, a: u32, b: u32, label: EdgeLabel) {
        assert_ne!(a, b, "a pair must relate two distinct objects");
        assert!((a as usize) < self.n && (b as usize) < self.n, "object id out of range");
        match label {
            EdgeLabel::Matching => {
                self.matching_adj[a as usize].push(b);
                self.matching_adj[b as usize].push(a);
            }
            EdgeLabel::NonMatching => self.nonmatching_edges.push((a, b)),
        }
    }

    /// Set of objects reachable from `start` using only matching edges
    /// (including `start` itself), as a membership bitmap.
    fn matching_component(&self, start: u32) -> Vec<bool> {
        let mut seen = vec![false; self.n];
        seen[start as usize] = true;
        let mut stack = vec![start];
        while let Some(x) = stack.pop() {
            for &y in &self.matching_adj[x as usize] {
                if !seen[y as usize] {
                    seen[y as usize] = true;
                    stack.push(y);
                }
            }
        }
        seen
    }

    /// Deduction by the literal Lemma 1 conditions.
    #[must_use]
    pub fn deduce(&self, a: u32, b: u32) -> Option<EdgeLabel> {
        let comp_a = self.matching_component(a);
        if comp_a[b as usize] {
            return Some(EdgeLabel::Matching);
        }
        let comp_b = self.matching_component(b);
        for &(u, v) in &self.nonmatching_edges {
            let (u, v) = (u as usize, v as usize);
            if (comp_a[u] && comp_b[v]) || (comp_a[v] && comp_b[u]) {
                return Some(EdgeLabel::NonMatching);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterGraph;
    use proptest::prelude::*;

    #[test]
    fn matches_lemma_examples() {
        // Paper Example 1 / Figure 2, 0-based ids.
        let mut g = PathOracleGraph::new(7);
        g.insert(0, 1, EdgeLabel::Matching);
        g.insert(2, 3, EdgeLabel::Matching);
        g.insert(3, 4, EdgeLabel::Matching);
        g.insert(0, 5, EdgeLabel::NonMatching);
        g.insert(1, 2, EdgeLabel::NonMatching);
        g.insert(2, 6, EdgeLabel::NonMatching);
        g.insert(4, 5, EdgeLabel::NonMatching);
        assert_eq!(g.deduce(2, 4), Some(EdgeLabel::Matching));
        assert_eq!(g.deduce(4, 6), Some(EdgeLabel::NonMatching));
        assert_eq!(g.deduce(0, 6), None);
    }

    #[test]
    fn symmetric_queries() {
        let mut g = PathOracleGraph::new(4);
        g.insert(0, 1, EdgeLabel::Matching);
        g.insert(1, 2, EdgeLabel::NonMatching);
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    assert_eq!(g.deduce(a, b), g.deduce(b, a), "asymmetry on ({a},{b})");
                }
            }
        }
    }

    /// Strategy producing a *consistent* random label sequence: each edge is
    /// labeled according to a random ground-truth clustering, which is exactly
    /// how the labeling framework feeds the ClusterGraph (deduction happens
    /// before insertion, so inserted labels never contradict the graph).
    fn consistent_sequence() -> impl Strategy<Value = (usize, Vec<(u32, u32, EdgeLabel)>)> {
        (4usize..16)
            .prop_flat_map(|n| {
                let entity = proptest::collection::vec(0u32..(n as u32 / 2).max(1), n);
                let pairs = proptest::collection::vec((0u32..n as u32, 0u32..n as u32), 0..40);
                (Just(n), entity, pairs)
            })
            .prop_map(|(n, entity, pairs)| {
                let seq = pairs
                    .into_iter()
                    .filter(|&(a, b)| a != b)
                    .map(|(a, b)| {
                        let label = if entity[a as usize] == entity[b as usize] {
                            EdgeLabel::Matching
                        } else {
                            EdgeLabel::NonMatching
                        };
                        (a, b, label)
                    })
                    .collect();
                (n, seq)
            })
    }

    proptest! {
        /// ClusterGraph must agree with the path-semantics oracle on every
        /// pair after every prefix of a consistent insertion sequence.
        #[test]
        fn cluster_graph_equals_oracle((n, seq) in consistent_sequence()) {
            let mut fast = ClusterGraph::new(n);
            let mut slow = PathOracleGraph::new(n);
            for &(a, b, label) in &seq {
                // Mirror the labeling framework: deduce first, insert only
                // when not deducible.
                if fast.deduce(a, b).is_none() {
                    fast.insert(a, b, label).expect("consistent sequence cannot conflict");
                    slow.insert(a, b, label);
                }
                for x in 0..n as u32 {
                    for y in (x + 1)..n as u32 {
                        prop_assert_eq!(
                            fast.deduce(x, y),
                            slow.deduce(x, y),
                            "disagreement on ({}, {}) after inserting ({}, {})", x, y, a, b
                        );
                    }
                }
            }
        }

        /// Deduction from the oracle is sound with respect to the generating
        /// ground truth: whatever it deduces equals the true relation.
        #[test]
        fn oracle_deduction_is_sound((n, seq) in consistent_sequence()) {
            // Rebuild the ground truth from the sequence itself: matching
            // edges union objects.
            let mut slow = PathOracleGraph::new(n);
            let mut uf = crate::UnionFind::new(n);
            let mut nonmatching = vec![];
            for &(a, b, label) in &seq {
                slow.insert(a, b, label);
                match label {
                    EdgeLabel::Matching => { uf.union(a, b); }
                    EdgeLabel::NonMatching => nonmatching.push((a, b)),
                }
            }
            for x in 0..n as u32 {
                for y in (x + 1)..n as u32 {
                    if let Some(EdgeLabel::Matching) = slow.deduce(x, y) {
                        prop_assert!(uf.connected(x, y));
                    }
                }
            }
            // Every directly inserted non-matching edge endpoints must not be
            // matching-connected (consistency of generated data).
            for (a, b) in nonmatching {
                prop_assert!(!uf.connected(a, b));
            }
        }
    }
}
