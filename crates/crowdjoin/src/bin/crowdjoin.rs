//! `crowdjoin` — command-line crowdsourced joins over CSV files.
//!
//! ```text
//! crowdjoin demo  [--seed N]
//! crowdjoin dedup --input FILE  [--threshold T] [--crowd auto|interactive]
//!                 [--auto-threshold X] [--output FILE] [--shards N]
//! crowdjoin join  --left FILE --right FILE  [same options]
//! crowdjoin join  --stream PATH  [--stream-chunk N] [same options]
//! ```
//!
//! * `demo` runs the paper's running example plus a generated workload and
//!   prints the savings summary — no files needed.
//! * `dedup` finds duplicate records within one CSV file (self join).
//! * `join` matches records across two CSV files with identical headers
//!   (cross join).
//! * `join --stream` is the streaming self-join: records arrive as JSONL
//!   (one file chunked by `--stream-chunk`, or a spool-style directory of
//!   `*.jsonl` chunk files processed in name order), candidates are
//!   discovered incrementally per arrival, and the closed stream feeds the
//!   ordinary labeling path — bit-identical to a batch run over the same
//!   records. With `--journal FILE` every ingest is write-ahead logged to
//!   `FILE.stream` so a killed stream resumes with `--resume FILE`.
//!
//! Crowd modes: `interactive` asks *you* to label each undeduced pair on
//! stdin (a crowd of one); `auto` (default) labels a pair matching iff its
//! machine likelihood is at least `--auto-threshold` (default 0.8) — a
//! self-labeling heuristic for pipelines without humans; deductions then
//! propagate those decisions transitively either way.
//!
//! Output is CSV with columns `a,b,label,provenance,likelihood` (record
//! indices are 0-based row numbers; for `join`, right-file indices continue
//! after the left file's).

use crowdjoin::records::{
    table_from_csv, table_from_jsonl, write_csv, Dataset, Record, Schema, Table,
};
use crowdjoin::report::{
    EngineBackend, JournalOutcome, MatcherTimings, ProgressLine, ReportFormat, Reporter,
};
use crowdjoin::{
    enforce_one_to_one, resolve_entities, sort_pairs, to_candidate_set, Label, LabelingResult,
    Oracle, Pair, Provenance, ScoredPair, SortStrategy,
};
use crowdjoin_matcher::{generate_candidates_prepared, MatcherConfig, TfIdfIndex, TokenizedCorpus};
use crowdjoin_util::FxHashMap;
use std::io::{BufRead, Write};
use std::process::ExitCode;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
enum Command {
    Demo {
        seed: u64,
    },
    Dedup {
        input: String,
        opts: JoinOpts,
    },
    Join {
        left: String,
        right: String,
        opts: JoinOpts,
    },
    /// `join --stream PATH`: the streaming self-join.
    Stream {
        input: String,
        opts: JoinOpts,
    },
}

#[derive(Debug, Clone, PartialEq)]
struct JoinOpts {
    threshold: f64,
    crowd: CrowdMode,
    auto_threshold: f64,
    output: Option<String>,
    /// Emit resolved entity clusters instead of pair labels.
    resolve: bool,
    /// Enforce a one-to-one constraint on the matches (cross joins of
    /// internally deduplicated tables).
    one_to_one: bool,
    /// Shard count for the execution engine: 1 = single-threaded sequential
    /// labeler (the classic path), 0 = one shard per CPU, N = N shards.
    shards: usize,
    /// Simulated-crowd mode: drive the event-loop engine against a
    /// deterministic platform and report cost/latency Table-1 style.
    platform: Option<PlatformPreset>,
    /// Which crowd backend answers the published HITs.
    backend: BackendKind,
    /// Spool directory of the spool backend (`--backend spool`).
    spool: Option<String>,
    /// Dynamically re-shard between publish rounds (platform mode only).
    reshard: bool,
    /// Question-ordering policy: which publishable pair goes to the crowd
    /// first (changes how many questions are paid for, never the labels).
    order: crowdjoin::OrderingMode,
    /// Seed for the simulated platform.
    seed: u64,
    /// Write-ahead journal every crowd answer to this file (platform mode
    /// only); a killed run resumes with `--resume`.
    journal: Option<String>,
    /// Resume a killed journaled run from this file (platform mode only).
    resume: Option<String>,
    /// Platform override: pairs per HIT.
    batch_size: Option<usize>,
    /// Platform override: workers in the simulated crowd.
    crowd_size: Option<usize>,
    /// Platform override: cents per completed assignment.
    price: Option<u32>,
    /// Print a per-phase wall-clock breakdown (tokenize / index /
    /// candidates / join) to stderr.
    timings: bool,
    /// Final-report format: progressive stderr lines, or one JSON document
    /// on stdout.
    report: ReportFormat,
    /// Write a JSONL trace of engine/matcher/backend events to this file
    /// (plus a Chrome-trace twin at `FILE.chrome.json` for Perfetto).
    trace: Option<String>,
    /// Write the final metrics-registry snapshot (JSON) to this file.
    metrics: Option<String>,
    /// Repaint a live stderr progress line while a spool-backed job waits
    /// on its external crowd.
    progress: bool,
    /// `join --stream` only: records per ingest batch when the stream
    /// input is a single JSONL file (`None` = the 512 default; a
    /// directory input ingests one chunk per file regardless).
    stream_chunk: Option<usize>,
}

/// Default ingest-batch size for a single-file `--stream` input.
const DEFAULT_STREAM_CHUNK: usize = 512;

impl Default for JoinOpts {
    fn default() -> Self {
        Self {
            threshold: 0.3,
            crowd: CrowdMode::Auto,
            auto_threshold: 0.8,
            output: None,
            resolve: false,
            one_to_one: false,
            shards: 1,
            platform: None,
            backend: BackendKind::Sim,
            spool: None,
            reshard: false,
            order: crowdjoin::OrderingMode::Likelihood,
            seed: 42,
            journal: None,
            resume: None,
            batch_size: None,
            crowd_size: None,
            price: None,
            timings: false,
            report: ReportFormat::Human,
            trace: None,
            metrics: None,
            progress: false,
            stream_chunk: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CrowdMode {
    Auto,
    Interactive,
}

/// Who answers the engine's published HITs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BackendKind {
    /// The in-process discrete-event simulator (default).
    Sim,
    /// The spool-directory backend: HITs out as JSON files, answers read
    /// back from an external process or human.
    Spool,
}

/// Worker-pool profile of the simulated platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlatformPreset {
    /// The paper's Table 1 setting: AMT latency model, perfectly accurate
    /// workers.
    Perfect,
    /// The Table 2 setting: 25% spammers, qualification test, majority vote.
    Amt,
}

const USAGE: &str = "usage:
  crowdjoin demo  [--seed N]
  crowdjoin dedup --input FILE  [options]
  crowdjoin join  --left FILE --right FILE  [options]
  crowdjoin join  --stream PATH  [options]

options:
  --stream PATH         join only: streaming self-join. Arrivals come from
                        PATH instead of --left/--right: a JSONL file (one
                        object per line, ingested in --stream-chunk
                        batches) or a spool-style directory of *.jsonl
                        chunk files (processed in name order, one ingest
                        batch per file). Candidates are discovered
                        incrementally per arrival; the closed stream is
                        bit-identical to a batch run over the same records.
                        With --journal FILE each ingest is write-ahead
                        logged to FILE.stream before it is applied, so a
                        killed stream resumes with --resume FILE (re-pass
                        the same input and flags)
  --stream-chunk N      records per ingest batch for a single-file --stream
                        input (default 512)
  --threshold T         machine-likelihood threshold for candidates (default 0.3)
  --crowd MODE          auto | interactive (default auto)
  --auto-threshold X    auto crowd answers matching iff likelihood >= X (default 0.8)
  --output FILE         write CSV here instead of stdout
  --resolve yes         output entity clusters instead of pair labels
  --one-to-one yes      keep at most one match per record (join only)
  --shards N            run the sharded engine on N shards (0 = one per CPU;
                        default 1 = classic single-threaded labeling;
                        auto crowd only — interactive stays sequential)
  --platform PRESET     simulate the crowd on the event-loop engine and
                        report cost/completion Table-1 style:
                        perfect (accurate workers) | amt (25% spammers,
                        majority vote). Labels come from the simulated run;
                        ground truth is the auto-threshold clustering.
  --backend KIND        who answers the published HITs: sim (the in-process
                        simulator, default) | spool (publish HITs as JSON
                        files into --spool DIR/hits and poll DIR/answers —
                        an external process or human answers them; implies
                        --platform perfect for batch/price defaults)
  --spool DIR           spool directory of --backend spool
  --reshard yes         platform mode (sim backend only): dynamically merge
                        shards between publish rounds as components
                        collapse (less partial-HIT waste)
  --order POLICY        question-ordering policy for the engine paths
                        (--shards/--platform/--stream):
                        likelihood (descending machine likelihood, the
                        classic default) | exact (expected-optimal order
                        per small component, enumerated) | online (re-rank
                        the unresolved frontier after every answer by
                        expected deductions triggered — fewest crowd
                        questions in practice). The policy changes which
                        pairs are crowdsourced, never the final labels;
                        journaled runs must resume with the same --order
  --seed N              seed for the simulated platform (default 42)
  --journal FILE        platform mode: append every crowd answer to a
                        crash-safe write-ahead journal; a killed run
                        resumes with --resume without re-paying the crowd
  --resume FILE         platform mode: resume a killed journaled run —
                        replays the journaled answers, asks only the rest,
                        and keeps appending to FILE (pass the same input
                        and flags as the original run)
  --batch-size N        platform mode: pairs per HIT (default 20)
  --crowd-size N        platform mode: size of the simulated worker pool
                        (default 40; split evenly across shards). This is
                        THE platform-capacity knob; the separate --crowd
                        flag picks the answering mode, not a size.
  --price CENTS         platform mode: cents per completed assignment
                        (default 2)
  --timings yes         print a per-phase wall-clock breakdown (tokenize /
                        tf-idf index / prefix index / candidate generation /
                        join) plus the probe-block filter-cascade decisions
                        to stderr — see where time goes on large inputs
  --report FORMAT       human (progressive stderr lines, default) | json
                        (one machine-readable report document on stdout at
                        the end; the labels CSV then only appears with
                        --output FILE)
  --trace FILE          record a structured event trace of the run: JSONL
                        at FILE plus a Chrome-trace twin at
                        FILE.chrome.json (open in Perfetto / about:tracing)
  --metrics FILE        write the final counters/gauges/histograms snapshot
                        (JSON) to FILE
  --progress yes        spool backend only: repaint a live stderr line
                        (answers so far, pairs awaiting the crowd) while
                        the job waits on its external answerer";

/// Parses argv (without the program name). Pure for testability.
fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let sub = it.next().ok_or_else(|| USAGE.to_string())?;
    let mut flags: FxHashMap<String, String> = FxHashMap::default();
    let rest: Vec<&String> = it.collect();
    let mut i = 0;
    while i < rest.len() {
        let key = rest[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument {:?}\n{USAGE}", rest[i]))?;
        let value =
            rest.get(i + 1).ok_or_else(|| format!("flag --{key} needs a value\n{USAGE}"))?;
        if flags.insert(key.to_string(), value.to_string()).is_some() {
            return Err(format!("duplicate flag --{key}"));
        }
        i += 2;
    }
    let mut take = |name: &str| flags.remove(name);
    let parse_opts = |flags: &mut dyn FnMut(&str) -> Option<String>| -> Result<JoinOpts, String> {
        let mut opts = JoinOpts::default();
        if let Some(t) = flags("threshold") {
            opts.threshold = t.parse().map_err(|_| format!("--threshold: not a number: {t:?}"))?;
        }
        if let Some(c) = flags("crowd") {
            opts.crowd = match c.as_str() {
                "auto" => CrowdMode::Auto,
                "interactive" => CrowdMode::Interactive,
                other if other.parse::<usize>().is_ok() => {
                    return Err(format!(
                        "--crowd picks the answering mode (auto|interactive), not a size; \
                         did you mean --crowd-size {other} (simulated worker-pool size)?"
                    ))
                }
                other => return Err(format!("--crowd must be auto|interactive, got {other:?}")),
            };
        }
        if let Some(x) = flags("auto-threshold") {
            opts.auto_threshold =
                x.parse().map_err(|_| format!("--auto-threshold: not a number: {x:?}"))?;
        }
        let parse_bool = |name: &str, v: String| match v.as_str() {
            "yes" | "true" | "1" => Ok(true),
            "no" | "false" | "0" => Ok(false),
            other => Err(format!("--{name} must be yes|no, got {other:?}")),
        };
        if let Some(v) = flags("resolve") {
            opts.resolve = parse_bool("resolve", v)?;
        }
        if let Some(v) = flags("one-to-one") {
            opts.one_to_one = parse_bool("one-to-one", v)?;
        }
        if let Some(v) = flags("timings") {
            opts.timings = parse_bool("timings", v)?;
        }
        if let Some(r) = flags("report") {
            opts.report = match r.as_str() {
                "human" => ReportFormat::Human,
                "json" => ReportFormat::Json,
                other => return Err(format!("--report must be human|json, got {other:?}")),
            };
        }
        opts.trace = flags("trace");
        opts.metrics = flags("metrics");
        if let Some(v) = flags("progress") {
            opts.progress = parse_bool("progress", v)?;
        }
        if let Some(c) = flags("stream-chunk") {
            let n: usize = c.parse().map_err(|_| format!("--stream-chunk: not a number: {c:?}"))?;
            if n == 0 {
                return Err("--stream-chunk must be at least 1 record per batch".to_string());
            }
            opts.stream_chunk = Some(n);
        }
        if let Some(s) = flags("shards") {
            opts.shards = s.parse().map_err(|_| format!("--shards: not a number: {s:?}"))?;
        }
        if let Some(p) = flags("platform") {
            opts.platform = Some(match p.as_str() {
                "perfect" => PlatformPreset::Perfect,
                "amt" => PlatformPreset::Amt,
                other => return Err(format!("--platform must be perfect|amt, got {other:?}")),
            });
        }
        if let Some(v) = flags("reshard") {
            opts.reshard = parse_bool("reshard", v)?;
        }
        if let Some(o) = flags("order") {
            opts.order = match crowdjoin::OrderingMode::parse(&o) {
                Some(mode) => mode,
                None => {
                    // Same courtesy as --crowd/--crowd-size: a recognizable
                    // near-miss gets pointed at the spelling we accept.
                    let hint = match o.as_str() {
                        "likelihood-descending" | "descending" | "default" => Some("likelihood"),
                        "expected" | "optimal" | "exact-expected" => Some("exact"),
                        "online-expected" | "dynamic" | "adaptive" => Some("online"),
                        _ => None,
                    };
                    return Err(match hint {
                        Some(h) => format!(
                            "--order must be likelihood|exact|online, got {o:?}; did you mean \
                             --order {h}?"
                        ),
                        None => format!("--order must be likelihood|exact|online, got {o:?}"),
                    });
                }
            };
        }
        if let Some(s) = flags("seed") {
            opts.seed = s.parse().map_err(|_| format!("--seed: not a number: {s:?}"))?;
        }
        if let Some(b) = flags("batch-size") {
            let n = b.parse().map_err(|_| format!("--batch-size: not a number: {b:?}"))?;
            if n == 0 {
                return Err("--batch-size must be at least 1 pair per HIT".to_string());
            }
            opts.batch_size = Some(n);
        }
        if let Some(c) = flags("crowd-size") {
            if matches!(c.as_str(), "auto" | "interactive") {
                return Err(format!(
                    "--crowd-size is the simulated worker-pool size (a number); for the \
                     answering mode use --crowd {c}"
                ));
            }
            let n: usize = c.parse().map_err(|_| format!("--crowd-size: not a number: {c:?}"))?;
            // Every HIT needs `assignments_per_hit` (3 in both presets)
            // distinct workers to resolve.
            if n < 3 {
                return Err(format!(
                    "--crowd-size must be at least 3 (each HIT needs 3 distinct workers for \
                     its majority vote), got {n}"
                ));
            }
            opts.crowd_size = Some(n);
        }
        if let Some(p) = flags("price") {
            opts.price = Some(p.parse().map_err(|_| format!("--price: not a number: {p:?}"))?);
        }
        opts.journal = flags("journal");
        opts.resume = flags("resume");
        if opts.journal.is_some() && opts.resume.is_some() {
            return Err("--journal starts a new journal and --resume continues an existing \
                        one; pass exactly one"
                .to_string());
        }
        let backend_given = flags("backend");
        if let Some(b) = &backend_given {
            opts.backend = match b.as_str() {
                "sim" => BackendKind::Sim,
                "spool" => BackendKind::Spool,
                other => return Err(format!("--backend must be sim|spool, got {other:?}")),
            };
        }
        opts.spool = flags("spool");
        if opts.spool.is_some() && opts.backend != BackendKind::Spool {
            return Err("--spool only applies to --backend spool".to_string());
        }
        match opts.backend {
            BackendKind::Spool => {
                if opts.spool.is_none() {
                    return Err("--backend spool requires --spool DIR (where HITs are \
                                published and answers are read back)"
                        .to_string());
                }
                if opts.reshard {
                    return Err("--reshard is a simulator-path optimization; the spool \
                                backend's journal replay cannot reconstruct re-sharded \
                                history (drop --reshard or use --backend sim)"
                        .to_string());
                }
                // The preset only supplies batch-size/price defaults for an
                // external crowd; imply one so `--backend spool` works
                // standalone.
                if opts.platform.is_none() {
                    opts.platform = Some(PlatformPreset::Perfect);
                }
            }
            BackendKind::Sim => {
                if backend_given.is_some() && opts.platform.is_none() {
                    return Err(
                        "--backend sim requires --platform perfect|amt (the backend answers \
                         the simulated platform run)"
                            .to_string(),
                    );
                }
            }
        }
        if opts.progress && opts.backend != BackendKind::Spool {
            return Err("--progress tracks a wall-clock crowd; it requires --backend spool \
                        (simulated runs finish in virtual time)"
                .to_string());
        }
        let platform_only: [(&str, bool); 5] = [
            ("--journal", opts.journal.is_some()),
            ("--resume", opts.resume.is_some()),
            ("--batch-size", opts.batch_size.is_some()),
            ("--crowd-size", opts.crowd_size.is_some()),
            ("--price", opts.price.is_some()),
        ];
        if opts.platform.is_none() {
            if let Some((flag, _)) = platform_only.iter().find(|(_, set)| *set) {
                return Err(format!("{flag} requires --platform perfect|amt"));
            }
        }
        // The ordering policy lives in the engine; the classic sequential
        // path (1 shard, no platform) never consults it, so refuse rather
        // than silently ignore a non-default choice there.
        if opts.order != crowdjoin::OrderingMode::Likelihood
            && opts.platform.is_none()
            && opts.shards == 1
        {
            return Err(format!(
                "--order {} needs an engine path: pass --shards N (0 or > 1) or \
                 --platform perfect|amt",
                opts.order
            ));
        }
        opts.output = flags("output");
        Ok(opts)
    };

    let cmd = match sub.as_str() {
        "demo" => {
            let seed = match take("seed") {
                Some(s) => s.parse().map_err(|_| format!("--seed: not a number: {s:?}"))?,
                None => 42,
            };
            Command::Demo { seed }
        }
        "dedup" => {
            if take("stream").is_some() {
                return Err("--stream belongs to the join command (a streaming self-join): \
                            crowdjoin join --stream PATH"
                    .to_string());
            }
            let input = take("input").ok_or("dedup requires --input FILE")?;
            let opts = parse_opts(&mut take)?;
            if opts.stream_chunk.is_some() {
                return Err("--stream-chunk requires --stream".to_string());
            }
            Command::Dedup { input, opts }
        }
        "join" => match take("stream") {
            Some(input) => {
                if take("left").is_some() || take("right").is_some() {
                    return Err("--stream reads arrivals from its own file/directory (a \
                                streaming self-join); drop --left/--right"
                        .to_string());
                }
                Command::Stream { input, opts: parse_opts(&mut take)? }
            }
            None => {
                let left = take("left")
                    .ok_or("join requires --left FILE (or --stream PATH for streaming)")?;
                let right = take("right").ok_or("join requires --right FILE")?;
                let opts = parse_opts(&mut take)?;
                if opts.stream_chunk.is_some() {
                    return Err("--stream-chunk requires --stream".to_string());
                }
                Command::Join { left, right, opts }
            }
        },
        other => return Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    if let Some(stray) = flags.keys().next() {
        return Err(format!("unknown flag --{stray}\n{USAGE}"));
    }
    Ok(cmd)
}

/// Oracle that auto-answers from the machine likelihood.
struct AutoOracle {
    likelihoods: FxHashMap<Pair, f64>,
    cutoff: f64,
    asked: u64,
}

impl Oracle for AutoOracle {
    fn answer(&mut self, pair: Pair) -> Label {
        self.asked += 1;
        let l = self.likelihoods.get(&pair).copied().unwrap_or(0.0);
        if l >= self.cutoff {
            Label::Matching
        } else {
            Label::NonMatching
        }
    }

    fn questions_asked(&self) -> u64 {
        self.asked
    }
}

/// Oracle that asks the human on stdin.
struct InteractiveOracle<'a> {
    dataset: &'a Dataset,
    asked: u64,
}

impl Oracle for InteractiveOracle<'_> {
    fn answer(&mut self, pair: Pair) -> Label {
        self.asked += 1;
        let schema = self.dataset.table.schema();
        eprintln!("\n--- pair {} of record #{} vs #{} ---", self.asked, pair.a(), pair.b());
        for (i, field) in schema.fields().iter().enumerate() {
            eprintln!(
                "  {field:>12}: {:40}  |  {}",
                self.dataset.table.record(pair.a() as usize).field(i),
                self.dataset.table.record(pair.b() as usize).field(i),
            );
        }
        loop {
            eprint!("same entity? [y/n] ");
            let _ = std::io::stderr().flush();
            let mut line = String::new();
            if std::io::stdin().lock().read_line(&mut line).unwrap_or(0) == 0 {
                eprintln!("(stdin closed — answering 'n')");
                return Label::NonMatching;
            }
            match line.trim().to_lowercase().as_str() {
                "y" | "yes" => return Label::Matching,
                "n" | "no" => return Label::NonMatching,
                _ => eprintln!("please answer y or n"),
            }
        }
    }

    fn questions_asked(&self) -> u64 {
        self.asked
    }
}

fn load_table(path: &str) -> Result<Table, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    table_from_csv(&text).map_err(|e| format!("{path}: {e}"))
}

/// `--platform` mode: run the whole crowdsourced job on the event-loop
/// engine — one crowd backend per shard, thousands of shards on a bounded
/// worker pool — and report money/latency the way the paper's Table 1
/// does. With the default sim backend, deterministic simulated workers
/// answer according to the auto-threshold clustering (likelihood ≥ cutoff,
/// made transitively consistent), so the run predicts what a real crowd
/// posting would cost before any money is spent; with `--backend spool`
/// the same clustering is only the *expected* answer written into the HIT
/// files, and whoever watches the spool directory decides.
fn simulate_on_platform(
    num_objects: usize,
    order: &[ScoredPair],
    opts: &JoinOpts,
    preset: PlatformPreset,
    reporter: &mut Reporter,
) -> Result<LabelingResult, String> {
    use crowdjoin::graph::UnionFind;
    use crowdjoin::sim::PlatformConfig;

    let mut uf = UnionFind::new(num_objects);
    for sp in order {
        if sp.likelihood >= opts.auto_threshold {
            uf.union(sp.pair.a(), sp.pair.b());
        }
    }
    let truth = crowdjoin::GroundTruth::new(uf.component_ids());
    let mut platform = match preset {
        PlatformPreset::Perfect => PlatformConfig::perfect_workers(opts.seed),
        PlatformPreset::Amt => PlatformConfig::amt_like(opts.seed),
    };
    if let Some(batch_size) = opts.batch_size {
        platform.batch_size = batch_size;
    }
    if let Some(crowd_size) = opts.crowd_size {
        platform.num_workers = crowd_size;
    }
    if let Some(price) = opts.price {
        platform.price_per_assignment_cents = price;
    }
    let engine = crowdjoin::EngineConfig {
        num_shards: opts.shards,
        reshard: opts.reshard,
        order: opts.order,
        seed: opts.seed,
        journal: opts.journal.clone().map(std::path::PathBuf::from),
        ..crowdjoin::EngineConfig::default()
    };
    let progress = if opts.progress { Some(ProgressLine::start()) } else { None };
    let report = match opts.backend {
        BackendKind::Spool => {
            let dir = opts.spool.as_deref().expect("--backend spool always carries --spool");
            let factory = crowdjoin::backend_spool::SpoolFactory::new(
                crowdjoin::backend_spool::SpoolConfig::new(dir),
            )
            .map_err(|e| format!("--spool {dir}: {e}"))?;
            reporter.note(&format!(
                "spool backend: publishing HITs into {dir}/hits/, waiting on {dir}/answers/ \
                 (any process — or human — may answer; see the README's \"Bring your own \
                 crowd\" walkthrough)"
            ));
            let job = crowdjoin::Engine::new(num_objects, order, &truth, &platform, engine.clone());
            if let Some(path) = &opts.resume {
                job.resume_with_backend(std::path::Path::new(path), &factory)
                    .map_err(|e| format!("--resume {path}: {e}"))?
            } else {
                job.run_with_backend(&factory).map_err(|e| format!("--journal: {e}"))?
            }
        }
        BackendKind::Sim => {
            if let Some(path) = &opts.resume {
                crowdjoin::resume_sharded_on_platform(
                    num_objects,
                    order,
                    &truth,
                    &platform,
                    &engine,
                    std::path::Path::new(path),
                )
                .map_err(|e| format!("--resume {path}: {e}"))?
            } else if engine.journal.is_some() {
                crowdjoin::Engine::new(num_objects, order, &truth, &platform, engine.clone())
                    .run()
                    .map_err(|e| format!("--journal: {e}"))?
            } else {
                crowdjoin::run_sharded_on_platform(num_objects, order, &truth, &platform, &engine)
            }
        }
    };
    if let Some(line) = progress {
        line.finish();
    }

    let backend = match opts.backend {
        BackendKind::Sim => EngineBackend::Sim,
        BackendKind::Spool => EngineBackend::Spool,
    };
    let journal = if let Some(path) = &opts.resume {
        JournalOutcome::Resumed(path)
    } else if let Some(path) = &opts.journal {
        JournalOutcome::Journaled(path)
    } else {
        JournalOutcome::None
    };
    reporter.platform_summary(&report, backend, journal);
    Ok(report.result)
}

/// Installs the `--trace` sinks and resets the metrics registry. Must run
/// before any matcher/stream stage so their spans land in the trace and
/// the registry starts clean for this job.
fn setup_observability(opts: &JoinOpts) -> Result<(), String> {
    if let Some(path) = &opts.trace {
        let jsonl = crowdjoin::obs::JsonlSink::create(std::path::Path::new(path))
            .map_err(|e| format!("--trace {path}: {e}"))?;
        let chrome_path = format!("{path}.chrome.json");
        let chrome = crowdjoin::obs::ChromeTraceSink::create(std::path::Path::new(&chrome_path))
            .map_err(|e| format!("--trace {chrome_path}: {e}"))?;
        crowdjoin::obs::install_sink(Box::new(jsonl));
        crowdjoin::obs::install_sink(Box::new(chrome));
    }
    crowdjoin::obs::reset_metrics();
    Ok(())
}

fn run_join(dataset: &Dataset, opts: &JoinOpts) -> Result<(), String> {
    setup_observability(opts)?;
    let reporter = Reporter::new(opts.report);

    let arity = dataset.table.schema().arity();
    // The matcher stage runs in explicit phases; each library stage
    // publishes its own wall time into the metrics registry
    // (`matcher.*.us` counters), which `--timings` reads back at the end —
    // no CLI-side stopwatches for the matcher phases.
    let matcher_cfg = MatcherConfig::for_arity(arity);
    let corpus = TokenizedCorpus::build_threaded(dataset, matcher_cfg.threads);
    let tfidf =
        TfIdfIndex::from_corpus_threaded(&corpus, &matcher_cfg.field_weights, matcher_cfg.threads);
    let candidates_raw = generate_candidates_prepared(dataset, &corpus, &tfidf, &matcher_cfg);
    finish_join(dataset, &candidates_raw, opts, reporter)
}

/// Everything downstream of candidate generation — thresholding, labeling
/// (sequential / sharded / platform), constraint cleanup, CSV output, and
/// report/trace/metrics flushing. Shared verbatim by the batch path
/// ([`run_join`]) and the streaming path ([`run_stream`]), which is what
/// makes a closed stream's labels/money/reports equal to batch by
/// construction.
fn finish_join(
    dataset: &Dataset,
    candidates_raw: &[crowdjoin_matcher::ScoredCandidate],
    opts: &JoinOpts,
    mut reporter: Reporter,
) -> Result<(), String> {
    let candidates = to_candidate_set(dataset, candidates_raw).above_threshold(opts.threshold);
    reporter.candidates(dataset.len(), candidates.len(), opts.threshold);
    let clock = std::time::Instant::now();

    let order: Vec<ScoredPair> = sort_pairs(&candidates, SortStrategy::ExpectedLikelihood);
    // Interactive mode is a crowd of one human answering serially: the
    // sequential labeler asks them the provably minimal question sequence,
    // while the engine's batch publishing would ask strictly more (a batch
    // is chosen before any of its answers arrive) in thread-dependent
    // order. So a human always gets the sequential path.
    let use_engine = opts.shards != 1 && opts.crowd != CrowdMode::Interactive;
    if opts.shards != 1 && opts.crowd == CrowdMode::Interactive {
        reporter.note(
            "note: --shards is ignored with --crowd interactive (a single human answers \
             sequentially; batching would ask you more questions)",
        );
    }
    let result: LabelingResult = if let Some(preset) = opts.platform {
        if opts.crowd == CrowdMode::Interactive {
            return Err(
                "--platform simulates a crowd; it cannot be combined with --crowd interactive"
                    .to_string(),
            );
        }
        simulate_on_platform(candidates.num_objects(), &order, opts, preset, &mut reporter)?
    } else if !use_engine {
        match opts.crowd {
            CrowdMode::Auto => {
                let mut oracle = AutoOracle {
                    likelihoods: order.iter().map(|sp| (sp.pair, sp.likelihood)).collect(),
                    cutoff: opts.auto_threshold,
                    asked: 0,
                };
                crowdjoin::label_sequential(candidates.num_objects(), &order, &mut oracle)
            }
            CrowdMode::Interactive => {
                let mut oracle = InteractiveOracle { dataset, asked: 0 };
                crowdjoin::label_sequential(candidates.num_objects(), &order, &mut oracle)
            }
        }
    } else {
        // Sharded engine: connected-component shards labeled on a worker
        // pool, questions answered through a thread-safe oracle front-end.
        let engine_cfg = crowdjoin::EngineConfig {
            num_shards: opts.shards,
            order: opts.order,
            ..crowdjoin::EngineConfig::default()
        };
        let oracle = crowdjoin::SyncOracle::new(AutoOracle {
            likelihoods: order.iter().map(|sp| (sp.pair, sp.likelihood)).collect(),
            cutoff: opts.auto_threshold,
            asked: 0,
        });
        let report = crowdjoin::run_sharded_with_oracle(
            candidates.num_objects(),
            &order,
            &oracle,
            &engine_cfg,
        );
        reporter.engine_oracle(&report);
        report.result
    };
    // The labeling stage is the CLI's own phase (the library stages above
    // publish theirs); same registry, same read-back path.
    crowdjoin::obs::counter("join.label.us", crowdjoin::obs::NO_SHARD)
        .add(clock.elapsed().as_micros() as u64);
    reporter.labeled(&result);
    if opts.timings {
        reporter.timings(&MatcherTimings::from_metrics());
    }

    let likelihood_of: FxHashMap<Pair, f64> =
        order.iter().map(|sp| (sp.pair, sp.likelihood)).collect();

    // Optional one-to-one cleanup: demote conflicting matches.
    let mut demoted: crowdjoin_util::FxHashSet<Pair> = Default::default();
    if opts.one_to_one {
        let matches: Vec<ScoredPair> = order
            .iter()
            .copied()
            .filter(|sp| result.label_of(sp.pair) == Some(Label::Matching))
            .collect();
        let outcome = enforce_one_to_one(&matches);
        demoted = outcome.demoted.iter().map(|sp| sp.pair).collect();
        if !demoted.is_empty() {
            reporter.note(&format!("one-to-one constraint demoted {} match(es)", demoted.len()));
        }
    }
    let effective_label = |pair: Pair, label: Label| {
        if demoted.contains(&pair) {
            Label::NonMatching
        } else {
            label
        }
    };

    let csv = if opts.resolve {
        // Entity clusters: rebuild a result view with demotions applied.
        let mut adjusted = LabelingResult::new();
        for lp in result.labeled_pairs() {
            adjusted.record(lp.pair, effective_label(lp.pair, lp.label), lp.provenance);
        }
        let resolution = resolve_entities(dataset.len(), &adjusted);
        if !resolution.is_consistent() {
            reporter.note(&format!(
                "warning: {} non-matching label(s) inside clusters (inconsistent answers)",
                resolution.intra_cluster_nonmatches.len()
            ));
        }
        let mut rows = vec![vec!["entity".to_string(), "record".to_string()]];
        for (entity, cluster) in resolution.clusters.iter().enumerate() {
            for &record in cluster {
                rows.push(vec![entity.to_string(), record.to_string()]);
            }
        }
        write_csv(&rows)
    } else {
        let mut rows = vec![vec![
            "a".to_string(),
            "b".to_string(),
            "label".to_string(),
            "provenance".to_string(),
            "likelihood".to_string(),
        ]];
        for lp in result.labeled_pairs() {
            rows.push(vec![
                lp.pair.a().to_string(),
                lp.pair.b().to_string(),
                effective_label(lp.pair, lp.label).to_string(),
                match lp.provenance {
                    Provenance::Crowdsourced => "crowdsourced".to_string(),
                    Provenance::Deduced => "deduced".to_string(),
                },
                format!("{:.4}", likelihood_of.get(&lp.pair).copied().unwrap_or(0.0)),
            ]);
        }
        write_csv(&rows)
    };
    match &opts.output {
        Some(path) => {
            std::fs::write(path, csv).map_err(|e| format!("cannot write {path:?}: {e}"))?
        }
        // In JSON-report mode stdout carries exactly one document; the
        // labels CSV is only emitted when routed to a file.
        None if opts.report == ReportFormat::Json => {}
        None => print!("{csv}"),
    }

    // Flush the trace before declaring success: a truncated trace file is
    // an error the user should see, not silently keep.
    crowdjoin::obs::finish_sinks().map_err(|e| format!("--trace: {e}"))?;
    if let Some(path) = &opts.metrics {
        std::fs::write(path, crowdjoin::obs::metrics_json())
            .map_err(|e| format!("--metrics {path}: {e}"))?;
    }
    if let Some(doc) = reporter.finish() {
        print!("{doc}");
    }
    Ok(())
}

/// Loads the `--stream` input as ingest batches plus the common schema.
///
/// * A file is one JSONL stream, split into `chunk`-record batches.
/// * A directory is a spool: every `*.jsonl` file in it, in name order, is
///   one batch — the shape an external producer drops chunks in. A resumed
///   run re-reads the same spool (the journal replay skips the prefix
///   already ingested), so later-sorting files dropped after a kill are
///   picked up.
fn load_stream_chunks(input: &str, chunk: usize) -> Result<(Schema, Vec<Vec<Record>>), String> {
    let path = std::path::Path::new(input);
    if path.is_dir() {
        let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("--stream {input}: {e}"))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("--stream {input}: no *.jsonl chunk files in directory"));
        }
        let mut schema: Option<Schema> = None;
        let mut chunks = Vec::with_capacity(files.len());
        for file in &files {
            let name = file.display();
            let text = std::fs::read_to_string(file).map_err(|e| format!("{name}: {e}"))?;
            let table = table_from_jsonl(&text).map_err(|e| format!("{name}: {e}"))?;
            match &schema {
                None => schema = Some(table.schema().clone()),
                Some(s) if s != table.schema() => {
                    return Err(format!(
                        "schema mismatch: {name} has fields {:?}, earlier chunks have {:?}",
                        table.schema().fields(),
                        s.fields()
                    ));
                }
                Some(_) => {}
            }
            chunks.push(table.records().to_vec());
        }
        Ok((schema.expect("at least one chunk file"), chunks))
    } else {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {input:?}: {e}"))?;
        let table = table_from_jsonl(&text).map_err(|e| format!("{input}: {e}"))?;
        let schema = table.schema().clone();
        let chunks = table.records().chunks(chunk).map(<[Record]>::to_vec).collect();
        Ok((schema, chunks))
    }
}

/// The engine journal at `path` gets a `.stream` sibling for ingest frames
/// (two-file scheme: answers in `path`, arrivals in `path.stream`, each
/// file byte-identical to what a pure batch/stream run would write).
fn stream_journal_path(path: &str) -> std::path::PathBuf {
    std::path::PathBuf::from(format!("{path}.stream"))
}

/// `join --stream PATH`: the streaming self-join. Ingests arrivals through
/// the incremental matcher (journaling each batch first when `--journal`
/// is set), closes the stream into the canonical batch-identical
/// `(dataset, candidates)`, and hands off to the ordinary labeling tail.
fn run_stream(input: &str, opts: &JoinOpts) -> Result<(), String> {
    setup_observability(opts)?;
    let reporter = Reporter::new(opts.report);

    let chunk_size = opts.stream_chunk.unwrap_or(DEFAULT_STREAM_CHUNK);
    let (schema, chunks) = load_stream_chunks(input, chunk_size)?;
    let total: usize = chunks.iter().map(Vec::len).sum();
    let matcher_cfg = MatcherConfig::for_arity(schema.arity());

    // Resume may precede the engine run that creates the answer journal: a
    // stream killed before close leaves only `FILE.stream` behind. The
    // stream side still resumes; the engine side then *starts* a journal
    // at FILE instead of resuming one.
    let mut opts = opts.clone();
    let (mut job, replayed) = match (&opts.journal, &opts.resume) {
        (Some(path), None) => {
            let spath = stream_journal_path(path);
            let job = crowdjoin::StreamJob::with_journal(schema, matcher_cfg, opts.seed, &spath)
                .map_err(|e| format!("--journal {}: {e}", spath.display()))?;
            (job, 0)
        }
        (None, Some(path)) => {
            let spath = stream_journal_path(path);
            let (job, replayed) =
                crowdjoin::StreamJob::resume(schema, matcher_cfg, opts.seed, &spath)
                    .map_err(|e| format!("--resume {}: {e}", spath.display()))?;
            if !std::path::Path::new(path).exists() {
                opts.journal = opts.resume.take();
            }
            (job, replayed)
        }
        _ => (crowdjoin::StreamJob::new(schema, matcher_cfg, opts.seed), 0),
    };
    if replayed > total {
        return Err(format!(
            "--resume: the stream journal holds {replayed} records but {input} supplies only \
             {total}; pass the same input as the original run"
        ));
    }
    if job.is_sealed() && replayed < total {
        return Err(format!(
            "--resume: the stream journal is sealed after {replayed} records; it cannot ingest \
             the {} further record(s) in {input}",
            total - replayed
        ));
    }

    let mut report = crowdjoin::StreamIngestReport::default();
    let mut seen = 0usize;
    for chunk in &chunks {
        let batch: Vec<(u32, Record)> = chunk
            .iter()
            .enumerate()
            .map(|(i, record)| ((seen + i) as u32, record.clone()))
            .filter(|(external, _)| (*external as usize) >= replayed)
            .collect();
        seen += chunk.len();
        if batch.is_empty() {
            continue;
        }
        let r = job.ingest(&batch).map_err(|e| format!("--journal: {e}"))?;
        report.inserted += r.inserted;
        report.delta_pairs += r.delta_pairs;
        report.components_joined += r.components_joined;
        report.components_opened += r.components_opened;
    }
    reporter.note(&format!(
        "stream: {total} record(s) in {} batch(es) ({replayed} replayed from the journal), \
         {} delta pair(s), {} provisional component(s)",
        chunks.len(),
        report.delta_pairs,
        job.num_components(),
    ));

    let (dataset, candidates_raw) = job.close().map_err(|e| format!("--journal: {e}"))?;
    finish_join(&dataset, &candidates_raw, &opts, reporter)
}

fn run_demo(seed: u64) -> Result<(), String> {
    use crowdjoin::records::{generate_paper, ClusterSpec, PaperGenConfig, PerturbConfig};
    use crowdjoin::{build_task, GroundTruthOracle};
    let dataset = generate_paper(&PaperGenConfig {
        num_records: 200,
        clusters: ClusterSpec::PowerLaw { alpha: 1.9, max_size: 30, force_max: true },
        perturb: PerturbConfig::heavy(),
        sibling_probability: 0.3,
        seed,
    });
    let (task, truth) = build_task(&dataset, &MatcherConfig::for_arity(5), 0.3);
    let mut oracle = GroundTruthOracle::new(&truth);
    let result = task.run_sequential(SortStrategy::ExpectedLikelihood, &mut oracle);
    println!(
        "demo: {} records, {} candidate pairs, {} crowd answers, {} deduced ({:.0}% saved)",
        dataset.len(),
        task.candidates().len(),
        result.num_crowdsourced(),
        result.num_deduced(),
        result.savings_ratio() * 100.0
    );
    Ok(())
}

fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Demo { seed } => run_demo(seed),
        Command::Dedup { input, opts } => {
            let table = load_table(&input)?;
            let n = table.len();
            let dataset = Dataset {
                table,
                entity_of: (0..n as u32).collect(), // unknown truth: unused
                split: None,
                name: input,
            };
            run_join(&dataset, &opts)
        }
        Command::Join { left, right, opts } => {
            let lt = load_table(&left)?;
            let rt = load_table(&right)?;
            if lt.schema() != rt.schema() {
                return Err(format!(
                    "schema mismatch: {left} has {:?}, {right} has {:?}",
                    lt.schema().fields(),
                    rt.schema().fields()
                ));
            }
            let split = lt.len();
            let mut table = lt;
            for r in rt.records() {
                table.push(r.clone());
            }
            let n = table.len();
            let dataset = Dataset {
                table,
                entity_of: (0..n as u32).collect(), // unknown truth: unused
                split: Some(split),
                name: format!("{left}⋈{right}"),
            };
            run_join(&dataset, &opts)
        }
        Command::Stream { input, opts } => run_stream(&input, &opts),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_demo() {
        assert_eq!(parse_args(&args("demo")), Ok(Command::Demo { seed: 42 }));
        assert_eq!(parse_args(&args("demo --seed 7")), Ok(Command::Demo { seed: 7 }));
    }

    #[test]
    fn parses_dedup_with_options() {
        let cmd = parse_args(&args(
            "dedup --input recs.csv --threshold 0.2 --crowd interactive --output out.csv",
        ))
        .unwrap();
        match cmd {
            Command::Dedup { input, opts } => {
                assert_eq!(input, "recs.csv");
                assert_eq!(opts.threshold, 0.2);
                assert_eq!(opts.crowd, CrowdMode::Interactive);
                assert_eq!(opts.output.as_deref(), Some("out.csv"));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_resolve_and_one_to_one() {
        let cmd =
            parse_args(&args("join --left a --right b --resolve yes --one-to-one yes")).unwrap();
        match cmd {
            Command::Join { opts, .. } => {
                assert!(opts.resolve);
                assert!(opts.one_to_one);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse_args(&args("dedup --input a --resolve maybe")).is_err());
    }

    #[test]
    fn parses_timings() {
        match parse_args(&args("dedup --input a.csv --timings yes")).unwrap() {
            Command::Dedup { opts, .. } => assert!(opts.timings),
            other => panic!("wrong command {other:?}"),
        }
        match parse_args(&args("dedup --input a.csv")).unwrap() {
            Command::Dedup { opts, .. } => assert!(!opts.timings),
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse_args(&args("dedup --input a.csv --timings sometimes")).is_err());
    }

    #[test]
    fn parses_join() {
        let cmd = parse_args(&args("join --left a.csv --right b.csv")).unwrap();
        assert!(matches!(cmd, Command::Join { .. }));
    }

    #[test]
    fn parses_shards() {
        match parse_args(&args("dedup --input a.csv --shards 8")).unwrap() {
            Command::Dedup { opts, .. } => assert_eq!(opts.shards, 8),
            other => panic!("wrong command {other:?}"),
        }
        match parse_args(&args("dedup --input a.csv")).unwrap() {
            Command::Dedup { opts, .. } => assert_eq!(opts.shards, 1),
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse_args(&args("dedup --input a.csv --shards many")).is_err());
    }

    #[test]
    fn parses_platform_mode() {
        match parse_args(&args("dedup --input a.csv --platform perfect --shards 0 --seed 9"))
            .unwrap()
        {
            Command::Dedup { opts, .. } => {
                assert_eq!(opts.platform, Some(PlatformPreset::Perfect));
                assert_eq!(opts.shards, 0);
                assert_eq!(opts.seed, 9);
                assert!(!opts.reshard);
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse_args(&args("join --left a --right b --platform amt --reshard yes")).unwrap() {
            Command::Join { opts, .. } => {
                assert_eq!(opts.platform, Some(PlatformPreset::Amt));
                assert!(opts.reshard);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Defaults: platform off, seed 42.
        match parse_args(&args("dedup --input a.csv")).unwrap() {
            Command::Dedup { opts, .. } => {
                assert_eq!(opts.platform, None);
                assert_eq!(opts.seed, 42);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse_args(&args("dedup --input a.csv --platform mturk")).is_err());
        assert!(parse_args(&args("dedup --input a.csv --seed soon")).is_err());
        assert!(parse_args(&args("dedup --input a.csv --reshard maybe")).is_err());
    }

    #[test]
    fn parses_journal_and_resume() {
        match parse_args(&args("dedup --input a.csv --platform amt --journal j.wal")).unwrap() {
            Command::Dedup { opts, .. } => {
                assert_eq!(opts.journal.as_deref(), Some("j.wal"));
                assert_eq!(opts.resume, None);
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse_args(&args("dedup --input a.csv --platform amt --resume j.wal")).unwrap() {
            Command::Dedup { opts, .. } => {
                assert_eq!(opts.resume.as_deref(), Some("j.wal"));
                assert_eq!(opts.journal, None);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Mutually exclusive, and platform-mode only.
        assert!(parse_args(&args(
            "dedup --input a.csv --platform amt --journal j.wal --resume j.wal"
        ))
        .is_err());
        assert!(parse_args(&args("dedup --input a.csv --journal j.wal")).is_err());
        assert!(parse_args(&args("dedup --input a.csv --resume j.wal")).is_err());
    }

    #[test]
    fn parses_platform_knobs() {
        match parse_args(&args(
            "dedup --input a.csv --platform perfect --batch-size 10 --crowd-size 80 --price 3",
        ))
        .unwrap()
        {
            Command::Dedup { opts, .. } => {
                assert_eq!(opts.batch_size, Some(10));
                assert_eq!(opts.crowd_size, Some(80));
                assert_eq!(opts.price, Some(3));
            }
            other => panic!("wrong command {other:?}"),
        }
        // Degenerate values are rejected at parse time, not deep in the
        // simulator.
        assert!(parse_args(&args("dedup --input a --platform amt --batch-size 0")).is_err());
        assert!(parse_args(&args("dedup --input a --platform amt --crowd-size 0")).is_err());
        assert!(parse_args(&args("dedup --input a --platform amt --crowd-size 2")).is_err());
        // Platform-mode only, and values must be numeric.
        assert!(parse_args(&args("dedup --input a.csv --batch-size 10")).is_err());
        assert!(parse_args(&args("dedup --input a.csv --crowd-size 80")).is_err());
        assert!(parse_args(&args("dedup --input a.csv --price 3")).is_err());
        assert!(parse_args(&args("dedup --input a --platform amt --batch-size many")).is_err());
        assert!(parse_args(&args("dedup --input a --platform amt --price free")).is_err());
    }

    #[test]
    fn parses_backend_and_spool() {
        // Default backend is sim.
        match parse_args(&args("dedup --input a.csv --platform amt")).unwrap() {
            Command::Dedup { opts, .. } => {
                assert_eq!(opts.backend, BackendKind::Sim);
                assert_eq!(opts.spool, None);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Spool backend implies platform mode (perfect preset for
        // batch/price defaults) and allows platform-only knobs.
        match parse_args(&args(
            "dedup --input a.csv --backend spool --spool /tmp/s --journal j.wal --price 3",
        ))
        .unwrap()
        {
            Command::Dedup { opts, .. } => {
                assert_eq!(opts.backend, BackendKind::Spool);
                assert_eq!(opts.spool.as_deref(), Some("/tmp/s"));
                assert_eq!(opts.platform, Some(PlatformPreset::Perfect));
                assert_eq!(opts.journal.as_deref(), Some("j.wal"));
                assert_eq!(opts.price, Some(3));
            }
            other => panic!("wrong command {other:?}"),
        }
        // An explicit preset survives the implication.
        match parse_args(&args("dedup --input a.csv --backend spool --spool s --platform amt"))
            .unwrap()
        {
            Command::Dedup { opts, .. } => assert_eq!(opts.platform, Some(PlatformPreset::Amt)),
            other => panic!("wrong command {other:?}"),
        }
        // Validation: each half of the pair requires the other; re-sharding
        // and unknown kinds are refused.
        let spool_needs_dir = parse_args(&args("dedup --input a.csv --backend spool"));
        assert!(spool_needs_dir.unwrap_err().contains("--spool DIR"));
        let dir_needs_spool = parse_args(&args("dedup --input a.csv --spool s --platform amt"));
        assert!(dir_needs_spool.unwrap_err().contains("--backend spool"));
        let no_reshard =
            parse_args(&args("dedup --input a.csv --backend spool --spool s --reshard yes"));
        assert!(no_reshard.unwrap_err().contains("simulator-path"));
        assert!(parse_args(&args("dedup --input a.csv --backend mturk --spool s")).is_err());
        // Explicit `--backend sim` outside platform mode is an error, with
        // the fix in the message.
        let sim_needs_platform = parse_args(&args("dedup --input a.csv --backend sim"));
        assert!(sim_needs_platform.unwrap_err().contains("--platform"));
    }

    #[test]
    fn parses_order_policy() {
        use crowdjoin::OrderingMode;
        // Default is the classic likelihood-descending scan.
        match parse_args(&args("dedup --input a.csv")).unwrap() {
            Command::Dedup { opts, .. } => assert_eq!(opts.order, OrderingMode::Likelihood),
            other => panic!("wrong command {other:?}"),
        }
        for (value, mode) in [
            ("likelihood", OrderingMode::Likelihood),
            ("exact", OrderingMode::Exact),
            ("online", OrderingMode::Online),
        ] {
            match parse_args(&args(&format!("dedup --input a.csv --shards 4 --order {value}")))
                .unwrap()
            {
                Command::Dedup { opts, .. } => assert_eq!(opts.order, mode),
                other => panic!("wrong command {other:?}"),
            }
        }
        // The classic sequential path never consults the policy: a
        // non-default --order without an engine path is refused, not
        // silently ignored.
        let err = parse_args(&args("dedup --input a.csv --order online")).unwrap_err();
        assert!(err.contains("--shards"), "refusal must point at the fix: {err:?}");
        match parse_args(&args("dedup --input a.csv --order likelihood")).unwrap() {
            Command::Dedup { opts, .. } => assert_eq!(opts.order, OrderingMode::Likelihood),
            other => panic!("wrong command {other:?}"),
        }
        // Works combined with platform mode and streaming join.
        match parse_args(&args("join --stream s.jsonl --order online --platform perfect")).unwrap()
        {
            Command::Stream { opts, .. } => assert_eq!(opts.order, OrderingMode::Online),
            other => panic!("wrong command {other:?}"),
        }
        // Unknown values are refused; near-misses get pointed at the
        // accepted spelling.
        let err = parse_args(&args("dedup --input a.csv --order random")).unwrap_err();
        assert!(err.contains("likelihood|exact|online"), "no valid list in {err:?}");
        assert!(!err.contains("did you mean"), "no hint for a cold miss: {err:?}");
        let err = parse_args(&args("dedup --input a.csv --order expected")).unwrap_err();
        assert!(err.contains("--order exact"), "hint missing from {err:?}");
        let err = parse_args(&args("dedup --input a.csv --order adaptive")).unwrap_err();
        assert!(err.contains("--order online"), "hint missing from {err:?}");
        let err = parse_args(&args("dedup --input a.csv --order default")).unwrap_err();
        assert!(err.contains("--order likelihood"), "hint missing from {err:?}");
    }

    #[test]
    fn crowd_flag_clash_gets_a_hint() {
        // A number given to --crowd: almost certainly meant --crowd-size.
        let err = parse_args(&args("dedup --input a.csv --platform amt --crowd 40")).unwrap_err();
        assert!(err.contains("--crowd-size 40"), "hint missing from {err:?}");
        // A mode given to --crowd-size: almost certainly meant --crowd.
        let err = parse_args(&args("dedup --input a.csv --platform amt --crowd-size interactive"))
            .unwrap_err();
        assert!(err.contains("--crowd interactive"), "hint missing from {err:?}");
        let err =
            parse_args(&args("dedup --input a.csv --platform amt --crowd-size auto")).unwrap_err();
        assert!(err.contains("--crowd auto"), "hint missing from {err:?}");
        // The legitimate uses stay untouched.
        assert!(parse_args(&args("dedup --input a.csv --crowd interactive")).is_ok());
        assert!(parse_args(&args("dedup --input a.csv --platform amt --crowd-size 40")).is_ok());
    }

    #[test]
    fn parses_observability_flags() {
        match parse_args(&args(
            "dedup --input a.csv --platform amt --report json --trace t.jsonl --metrics m.json",
        ))
        .unwrap()
        {
            Command::Dedup { opts, .. } => {
                assert_eq!(opts.report, ReportFormat::Json);
                assert_eq!(opts.trace.as_deref(), Some("t.jsonl"));
                assert_eq!(opts.metrics.as_deref(), Some("m.json"));
                assert!(!opts.progress);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Defaults: human report, no trace/metrics, no progress line.
        match parse_args(&args("dedup --input a.csv")).unwrap() {
            Command::Dedup { opts, .. } => {
                assert_eq!(opts.report, ReportFormat::Human);
                assert_eq!(opts.trace, None);
                assert_eq!(opts.metrics, None);
                assert!(!opts.progress);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse_args(&args("dedup --input a.csv --report xml")).is_err());
    }

    #[test]
    fn progress_requires_spool_backend() {
        match parse_args(&args("dedup --input a.csv --backend spool --spool /tmp/s --progress yes"))
            .unwrap()
        {
            Command::Dedup { opts, .. } => assert!(opts.progress),
            other => panic!("wrong command {other:?}"),
        }
        let err =
            parse_args(&args("dedup --input a.csv --platform amt --progress yes")).unwrap_err();
        assert!(err.contains("--backend spool"), "hint missing from {err:?}");
        assert!(parse_args(&args("dedup --input a.csv --progress sometimes")).is_err());
    }

    #[test]
    fn parses_stream() {
        match parse_args(&args("join --stream arrivals.jsonl")).unwrap() {
            Command::Stream { input, opts } => {
                assert_eq!(input, "arrivals.jsonl");
                assert_eq!(opts.stream_chunk, None);
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse_args(&args("join --stream spool/ --stream-chunk 100")).unwrap() {
            Command::Stream { opts, .. } => assert_eq!(opts.stream_chunk, Some(100)),
            other => panic!("wrong command {other:?}"),
        }
        // The streaming run carries the full option set — platform mode,
        // journaling, backends.
        match parse_args(&args(
            "join --stream s.jsonl --platform perfect --journal j.wal --shards 4",
        ))
        .unwrap()
        {
            Command::Stream { opts, .. } => {
                assert_eq!(opts.platform, Some(PlatformPreset::Perfect));
                assert_eq!(opts.journal.as_deref(), Some("j.wal"));
                assert_eq!(opts.shards, 4);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn stream_flag_validation() {
        // --stream replaces the positional inputs.
        let err = parse_args(&args("join --stream s.jsonl --left a.csv --right b.csv"));
        assert!(err.unwrap_err().contains("drop --left/--right"));
        // --stream-chunk is meaningless without --stream…
        let err = parse_args(&args("join --left a --right b --stream-chunk 64")).unwrap_err();
        assert!(err.contains("requires --stream"), "{err:?}");
        let err = parse_args(&args("dedup --input a.csv --stream-chunk 64")).unwrap_err();
        assert!(err.contains("requires --stream"), "{err:?}");
        // …and must be a positive count.
        assert!(parse_args(&args("join --stream s --stream-chunk 0")).is_err());
        assert!(parse_args(&args("join --stream s --stream-chunk many")).is_err());
        // dedup points at the join command.
        let err = parse_args(&args("dedup --input a.csv --stream s.jsonl")).unwrap_err();
        assert!(err.contains("join --stream"), "{err:?}");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&args("frobnicate")).is_err());
        assert!(parse_args(&args("dedup")).is_err(), "missing --input");
        assert!(parse_args(&args("join --left a.csv")).is_err(), "missing --right");
        assert!(parse_args(&args("demo --seed nope")).is_err());
        assert!(parse_args(&args("dedup --input a --crowd psychic")).is_err());
        assert!(parse_args(&args("demo --bogus 1")).is_err());
        assert!(parse_args(&args("demo --seed 1 --seed 2")).is_err(), "duplicate flag");
    }

    #[test]
    fn auto_oracle_uses_cutoff() {
        let p_hi = Pair::new(0, 1);
        let p_lo = Pair::new(1, 2);
        let mut o = AutoOracle {
            likelihoods: [(p_hi, 0.9), (p_lo, 0.4)].into_iter().collect(),
            cutoff: 0.8,
            asked: 0,
        };
        assert_eq!(o.answer(p_hi), Label::Matching);
        assert_eq!(o.answer(p_lo), Label::NonMatching);
        assert_eq!(o.answer(Pair::new(5, 6)), Label::NonMatching, "unknown pair");
        assert_eq!(o.questions_asked(), 3);
    }
}
