//! Glue from datasets and machine candidates to labeling tasks.
//!
//! `crowdjoin-records` and `crowdjoin-matcher` know nothing about the
//! labeling framework, and `crowdjoin-core` knows nothing about records.
//! This module adapts between them: a [`Dataset`] plus a [`MatcherConfig`]
//! becomes a [`LabelingTask`] with its [`GroundTruth`].

use crowdjoin_core::{CandidateSet, GroundTruth, LabelingTask, Pair, ScoredPair};
use crowdjoin_matcher::{generate_candidates, MatcherConfig, ScoredCandidate};
use crowdjoin_records::Dataset;

/// Converts machine candidates into the core candidate-set type.
///
/// # Panics
///
/// Panics if a candidate references a record outside the dataset.
#[must_use]
pub fn to_candidate_set(dataset: &Dataset, candidates: &[ScoredCandidate]) -> CandidateSet {
    let pairs =
        candidates.iter().map(|c| ScoredPair::new(Pair::new(c.a, c.b), c.likelihood)).collect();
    CandidateSet::new(dataset.len(), pairs)
}

/// Extracts the dataset's ground truth in core terms.
#[must_use]
pub fn ground_truth_of(dataset: &Dataset) -> GroundTruth {
    GroundTruth::new(dataset.entity_of.clone())
}

/// Runs the machine stage end to end: candidate generation, likelihood
/// thresholding ("only ask the crowd to label the most likely matching
/// pairs"), and task construction.
///
/// Returns the labeling task and the ground truth (used for oracles,
/// experiment-only orders, and quality scoring).
#[must_use]
pub fn build_task(
    dataset: &Dataset,
    matcher: &MatcherConfig,
    likelihood_threshold: f64,
) -> (LabelingTask, GroundTruth) {
    let candidates = generate_candidates(dataset, matcher);
    let set = to_candidate_set(dataset, &candidates).above_threshold(likelihood_threshold);
    (LabelingTask::new(set), ground_truth_of(dataset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdjoin_core::{GroundTruthOracle, SortStrategy};
    use crowdjoin_records::{generate_paper, ClusterSpec, PaperGenConfig, PerturbConfig};

    fn small_dataset() -> Dataset {
        generate_paper(&PaperGenConfig {
            num_records: 50,
            clusters: ClusterSpec::Explicit(vec![(5, 3), (2, 5)]),
            perturb: PerturbConfig::light(),
            sibling_probability: 0.0,
            seed: 123,
        })
    }

    #[test]
    fn build_task_produces_labelable_candidates() {
        let ds = small_dataset();
        let (task, truth) = build_task(&ds, &MatcherConfig::for_arity(5), 0.3);
        assert!(!task.candidates().is_empty(), "threshold 0.3 should keep some pairs");
        let mut oracle = GroundTruthOracle::new(&truth);
        let result = task.run_sequential(SortStrategy::ExpectedLikelihood, &mut oracle);
        assert_eq!(result.num_labeled(), task.candidates().len());
        // Everything labeled correctly with the perfect oracle.
        for sp in task.candidates().pairs() {
            assert_eq!(result.label_of(sp.pair), Some(truth.label_of(sp.pair)));
        }
    }

    #[test]
    fn higher_threshold_keeps_fewer_pairs() {
        let ds = small_dataset();
        let (low, _) = build_task(&ds, &MatcherConfig::for_arity(5), 0.1);
        let (high, _) = build_task(&ds, &MatcherConfig::for_arity(5), 0.5);
        assert!(high.candidates().len() <= low.candidates().len());
    }

    #[test]
    fn ground_truth_matches_dataset() {
        let ds = small_dataset();
        let truth = ground_truth_of(&ds);
        assert_eq!(truth.num_objects(), ds.len());
        for i in 0..ds.len() {
            for j in (i + 1)..ds.len().min(i + 5) {
                assert_eq!(
                    truth.is_matching(Pair::new(i as u32, j as u32)),
                    ds.is_true_match(i, j)
                );
            }
        }
    }
}
