//! One place for everything the CLI tells the user about a finished job.
//!
//! The `crowdjoin` binary used to scatter its human-facing summary across
//! ~30 `eprintln!` call sites; this module centralizes them behind a
//! [`Reporter`] so the same run can be narrated two ways:
//!
//! * **human** (default): the familiar stderr lines, printed as the run
//!   progresses — candidate counts, the `=== … ===` engine block, the
//!   savings summary, optional `--timings`;
//! * **json** (`--report json`): nothing is printed along the way; the
//!   reporter accumulates every section and [`Reporter::finish`] returns
//!   one machine-readable document (schema `crowdjoin-report/1`) for
//!   stdout — the final [`EngineReport`] rollups (per-shard and per-round
//!   metrics included) plus the matcher's phase timings.
//!
//! Either way the *labels CSV* is unaffected: reports go to stderr or to
//! the single stdout JSON document, never interleaved with data output.
//!
//! The wall-clock [`ProgressLine`] lives here too: a sampling thread that
//! repaints one stderr status line from the engine's always-on metrics
//! registry (answers so far, pairs in flight) while a spool-backed job
//! waits on an external crowd.

use crowdjoin_engine::EngineReport;
use crowdjoin_obs::json::{js_f64, js_str, JsonObject};
use crowdjoin_obs::metrics::MetricValue;
use crowdjoin_obs::NO_SHARD;
use std::time::Duration;

/// How the CLI narrates the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportFormat {
    /// Progressive stderr lines (the default).
    #[default]
    Human,
    /// One `crowdjoin-report/1` JSON document on stdout at the end.
    Json,
}

/// Which backend answered the engine's HITs (affects the summary header
/// and whether completion time is virtual or wall-clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineBackend {
    /// The in-process discrete-event simulator.
    Sim,
    /// The spool-directory backend (external answerer, wall clock).
    Spool,
}

/// Journal involvement of the run, for the summary's last line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalOutcome<'a> {
    /// No journal in play.
    None,
    /// A fresh journal was written to this path.
    Journaled(&'a str),
    /// The run resumed from this journal path.
    Resumed(&'a str),
}

/// Wall-clock phase breakdown of the matcher + labeling pipeline, plus the
/// prefix index's per-block filter-cascade decisions.
#[derive(Debug, Clone, Copy, Default)]
pub struct MatcherTimings {
    /// One-pass tokenization of the dataset.
    pub tokenize: Duration,
    /// Tf-idf index construction.
    pub index: Duration,
    /// Prefix-index build (prefix cuts + filter-cascade planning).
    pub prefix: Duration,
    /// Candidate generation (blocked probe + verify).
    pub candidates: Duration,
    /// The labeling run itself (sequential, engine, or platform).
    pub join: Duration,
    /// Probe blocks the index was tiled into.
    pub blocks: u64,
    /// Blocks where the cascade enabled the length filter.
    pub blocks_len_on: u64,
    /// Blocks where the cascade enabled the positional filter.
    pub blocks_pos_on: u64,
}

impl MatcherTimings {
    /// Reads the phase breakdown back from the always-on metrics registry.
    ///
    /// The matcher library publishes its own stage timers as µs counters
    /// (`matcher.tokenize.us`, `matcher.index.us`, `matcher.prefix.us`,
    /// `matcher.candidates.us`) plus the block cascade's decision counters
    /// (`matcher.blocks`, `matcher.blocks.len_on`, `matcher.blocks.pos_on`),
    /// and the CLI publishes `join.label.us` around the labeling run, so
    /// `--timings` no longer needs its own `Instant` bookkeeping — one
    /// registry read after the job replaces the ad-hoc stopwatch sites.
    /// Counters accumulate, so callers should `reset_metrics()` at job
    /// start (the CLI already does).
    #[must_use]
    pub fn from_metrics() -> Self {
        let mut t = Self::default();
        for snap in crowdjoin_obs::snapshot_metrics() {
            if snap.shard != NO_SHARD {
                continue;
            }
            let MetricValue::Counter(v) = snap.value else { continue };
            let d = Duration::from_micros(v);
            match snap.name {
                "matcher.tokenize.us" => t.tokenize = d,
                "matcher.index.us" => t.index = d,
                "matcher.prefix.us" => t.prefix = d,
                "matcher.candidates.us" => t.candidates = d,
                "join.label.us" => t.join = d,
                "matcher.blocks" => t.blocks = v,
                "matcher.blocks.len_on" => t.blocks_len_on = v,
                "matcher.blocks.pos_on" => t.blocks_pos_on = v,
                _ => {}
            }
        }
        t
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Accumulates (json) or prints (human) the run's report sections.
#[derive(Debug, Default)]
pub struct Reporter {
    format: ReportFormat,
    fields: Vec<(&'static str, String)>,
}

impl Reporter {
    /// A reporter narrating in `format`.
    #[must_use]
    pub fn new(format: ReportFormat) -> Self {
        Self { format, fields: Vec::new() }
    }

    fn is_json(&self) -> bool {
        self.format == ReportFormat::Json
    }

    /// An informational aside (spool banner, shard-flag note, one-to-one
    /// demotions, consistency warnings). Always goes to stderr — asides
    /// narrate the run in both formats and never join the JSON document.
    pub fn note(&self, msg: &str) {
        eprintln!("{msg}");
    }

    /// The matcher stage's outcome: candidate pairs over the threshold.
    pub fn candidates(&mut self, records: usize, candidates: usize, threshold: f64) {
        if self.is_json() {
            self.fields.push(("records", records.to_string()));
            self.fields.push(("candidates", candidates.to_string()));
            self.fields.push(("threshold", format!("{threshold}")));
        } else {
            eprintln!("{records} records -> {candidates} candidate pairs at threshold {threshold}");
        }
    }

    /// The final labeled/crowdsourced/deduced/savings summary.
    pub fn labeled(&mut self, result: &crowdjoin_core::LabelingResult) {
        if self.is_json() {
            let mut obj = JsonObject::new();
            obj.field("total", result.num_labeled().to_string());
            obj.field("crowdsourced", result.num_crowdsourced().to_string());
            obj.field("deduced", result.num_deduced().to_string());
            obj.field("conflicts", result.num_conflicts().to_string());
            obj.field("savings_ratio", js_f64(result.savings_ratio(), 4));
            self.fields.push(("labeled", obj.render()));
        } else {
            eprintln!(
                "labeled {} pairs: {} answered, {} deduced for free ({:.0}% saved)",
                result.num_labeled(),
                result.num_crowdsourced(),
                result.num_deduced(),
                result.savings_ratio() * 100.0
            );
        }
    }

    /// The sharded-engine one-liner for oracle-driven (non-platform) runs.
    pub fn engine_oracle(&mut self, report: &EngineReport) {
        if self.is_json() {
            self.fields.push(("engine", engine_json(report)));
        } else {
            eprintln!(
                "engine: {} component(s) across {} shard(s), critical path {} publish round(s)",
                report.num_components,
                report.num_shards(),
                report.critical_path_rounds()
            );
        }
    }

    /// The full `=== … ===` platform-run summary block.
    pub fn platform_summary(
        &mut self,
        report: &EngineReport,
        backend: EngineBackend,
        journal: JournalOutcome<'_>,
    ) {
        if self.is_json() {
            self.fields.push(("engine", engine_json(report)));
            return;
        }
        let (hits, assignments) = report
            .shards
            .iter()
            .filter_map(|s| s.stats.as_ref())
            .fold((0usize, 0usize), |(h, a), st| {
                (h + st.hits_published, a + st.assignments_completed)
            });
        match backend {
            EngineBackend::Sim => eprintln!("=== simulated crowd run (event-loop engine) ==="),
            EngineBackend::Spool => {
                eprintln!("=== external crowd run (spool backend, event-loop engine) ===");
            }
        }
        if report.reshard_generations > 0 {
            // With re-sharding, `shards` holds one report per shard
            // *incarnation* (retired generations plus their merged
            // successors), not a concurrent shard count.
            eprintln!(
                "  shard runs         {} incarnations over {} component(s), {} re-shard generation(s)",
                report.num_shards(),
                report.num_components,
                report.reshard_generations
            );
        } else {
            eprintln!(
                "  shards             {} over {} component(s)",
                report.num_shards(),
                report.num_components
            );
        }
        eprintln!("  publish rounds     {} (critical path)", report.critical_path_rounds());
        eprintln!(
            "  pairs labeled      {} = {} crowdsourced + {} deduced ({:.0}% saved)",
            report.result.num_labeled(),
            report.num_crowdsourced(),
            report.num_deduced(),
            report.result.savings_ratio() * 100.0
        );
        eprintln!("  HITs               {hits} published, {assignments} assignments completed");
        eprintln!(
            "  partial-HIT waste  {:.1}% of paid pair slots",
            report.partial_hit_waste() * 100.0
        );
        eprintln!("  cost               ${:.2}", report.total_cost_cents as f64 / 100.0);
        match backend {
            EngineBackend::Sim => {
                eprintln!("  completion         {:.2} virtual hours", report.completion.as_hours());
            }
            EngineBackend::Spool => eprintln!(
                "  completion         {:.1} wall-clock seconds",
                report.completion.0 as f64 / 1000.0
            ),
        }
        match journal {
            JournalOutcome::Resumed(path) => eprintln!(
                "  resumed            {} answer(s) (${:.2}) replayed from {path}, {} newly asked",
                report.num_replayed_answers(),
                report.replayed_cost_cents() as f64 / 100.0,
                report.num_new_answers(),
            ),
            JournalOutcome::Journaled(path) => eprintln!(
                "  journal            {} answer(s) logged to {path} (resume with --resume {path})",
                report.num_crowd_answers()
            ),
            JournalOutcome::None => {}
        }
    }

    /// The `--timings` phase breakdown.
    pub fn timings(&mut self, t: &MatcherTimings) {
        if self.is_json() {
            let mut obj = JsonObject::new();
            obj.field("tokenize", js_f64(ms(t.tokenize), 3));
            obj.field("index", js_f64(ms(t.index), 3));
            obj.field("prefix", js_f64(ms(t.prefix), 3));
            obj.field("candidates", js_f64(ms(t.candidates), 3));
            obj.field("join", js_f64(ms(t.join), 3));
            self.fields.push(("timings_ms", obj.render()));
            let mut blocks = JsonObject::new();
            blocks.field("total", t.blocks.to_string());
            blocks.field("len_filter_on", t.blocks_len_on.to_string());
            blocks.field("pos_filter_on", t.blocks_pos_on.to_string());
            self.fields.push(("probe_blocks", blocks.render()));
        } else {
            eprintln!(
                "timings: tokenize {:.1} ms | tf-idf index {:.1} ms | prefix {:.1} ms | \
                 candidates {:.1} ms | join {:.1} ms",
                ms(t.tokenize),
                ms(t.index),
                ms(t.prefix),
                ms(t.candidates),
                ms(t.join)
            );
            eprintln!(
                "blocks:  {} probe block(s) — length filter on in {}, positional filter on \
                 in {}",
                t.blocks, t.blocks_len_on, t.blocks_pos_on
            );
        }
    }

    /// Ends the report: `Some(document)` to print on stdout in JSON mode,
    /// `None` in human mode (everything already went to stderr).
    #[must_use]
    pub fn finish(self) -> Option<String> {
        if !self.is_json() {
            return None;
        }
        let mut doc = JsonObject::new();
        doc.field("schema", js_str("crowdjoin-report/1"));
        for (key, rendered) in self.fields {
            doc.field(key, rendered);
        }
        Some(format!("{}\n", doc.render()))
    }
}

/// Renders an [`EngineReport`] — job totals plus the per-shard and
/// per-round metric rollups — as one JSON object.
#[must_use]
pub fn engine_json(report: &EngineReport) -> String {
    let (hits, assignments) = report
        .shards
        .iter()
        .filter_map(|s| s.stats.as_ref())
        .fold((0usize, 0usize), |(h, a), st| (h + st.hits_published, a + st.assignments_completed));
    let mut obj = JsonObject::new();
    obj.field("shards", report.num_shards().to_string());
    obj.field("components", report.num_components.to_string());
    obj.field("reshard_generations", report.reshard_generations.to_string());
    obj.field("critical_path_rounds", report.critical_path_rounds().to_string());
    obj.field("hits_published", hits.to_string());
    obj.field("assignments_completed", assignments.to_string());
    obj.field("partial_hit_waste", js_f64(report.partial_hit_waste(), 4));
    obj.field("cost_cents", report.total_cost_cents.to_string());
    obj.field("completion_ms", report.completion.0.to_string());
    obj.field("replayed_answers", report.num_replayed_answers().to_string());
    obj.field("replayed_cost_cents", report.replayed_cost_cents().to_string());
    let shard_rows: Vec<String> = report
        .shard_metrics()
        .iter()
        .map(|m| {
            let mut row = JsonObject::new();
            row.field("shard", m.shard.to_string());
            row.field("crowdsourced", m.crowdsourced.to_string());
            row.field("deduced", m.deduced.to_string());
            row.field("conflicts", m.conflicts.to_string());
            row.field("publish_rounds", m.publish_rounds.to_string());
            row.field("spend_cents", m.spend_cents.to_string());
            row.field("waste", js_f64(m.waste, 4));
            row.field("peak_unresolved", m.peak_unresolved.to_string());
            row.field("replayed_answers", m.replayed_answers.to_string());
            row.render()
        })
        .collect();
    obj.field("shard_metrics", format!("[{}]", shard_rows.join(", ")));
    let round_rows: Vec<String> = report
        .round_metrics()
        .iter()
        .map(|r| {
            let mut row = JsonObject::new();
            row.field("round", r.round.to_string());
            row.field("published", r.published.to_string());
            row.field("crowdsourced", r.crowdsourced.to_string());
            row.field("deduced", r.deduced.to_string());
            row.field("cost_cents", r.cost_cents.to_string());
            row.field("at_ms", r.at.0.to_string());
            row.render()
        })
        .collect();
    obj.field("round_metrics", format!("[{}]", round_rows.join(", ")));
    obj.render()
}

/// A live stderr progress line for wall-clock (spool-backed) jobs.
///
/// Samples the always-on metrics registry — `engine.answers` counters and
/// `engine.unresolved_pairs` gauges across shards — a few times a second
/// and repaints one `\r`-anchored line while the job waits on an external
/// crowd. Purely an extra *reader* of existing metrics: it publishes
/// nothing, so engine output is untouched.
#[derive(Debug)]
pub struct ProgressLine {
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ProgressLine {
    /// Starts the sampling thread.
    #[must_use]
    pub fn start() -> Self {
        use std::sync::atomic::{AtomicBool, Ordering};
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let flag = std::sync::Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("crowdjoin-progress".into())
            .spawn(move || {
                let started = std::time::Instant::now();
                while !flag.load(Ordering::Relaxed) {
                    let (answered, in_flight) = Self::sample();
                    eprint!(
                        "\r[{:>5.0}s] crowd answers {answered} | pairs awaiting crowd {in_flight}   ",
                        started.elapsed().as_secs_f64()
                    );
                    std::thread::sleep(Duration::from_millis(500));
                }
                // Blank the line out before the final summary prints.
                eprint!("\r{:78}\r", "");
            })
            .expect("spawn progress thread");
        Self { stop, handle: Some(handle) }
    }

    /// Sums `engine.answers` / `engine.unresolved_pairs` over all shards.
    fn sample() -> (u64, i64) {
        let mut answered = 0u64;
        let mut in_flight = 0i64;
        for snap in crowdjoin_obs::snapshot_metrics() {
            if snap.shard == NO_SHARD {
                continue;
            }
            match (snap.name, snap.value) {
                ("engine.answers", MetricValue::Counter(v)) => answered += v,
                ("engine.unresolved_pairs", MetricValue::Gauge(v)) => in_flight += v.max(0),
                _ => {}
            }
        }
        (answered, in_flight)
    }

    /// Stops the thread and clears the line.
    pub fn finish(mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ProgressLine {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdjoin_core::{Label, LabelingResult, Pair, Provenance};
    use crowdjoin_engine::ShardReport;
    use crowdjoin_sim::VirtualTime;

    fn tiny_report() -> EngineReport {
        let mut result = LabelingResult::new();
        result.record(Pair::new(0, 1), Label::Matching, Provenance::Crowdsourced);
        result.record(Pair::new(1, 2), Label::Matching, Provenance::Deduced);
        let shard = ShardReport {
            shard: 0,
            num_objects: 3,
            num_pairs: 2,
            num_components: 1,
            result,
            stats: None,
            completion: VirtualTime(1500),
            publish_rounds: 2,
            replayed_answers: 0,
            replayed_cost_cents: 0,
            rounds: vec![crowdjoin_engine::RoundMetric {
                round: 1,
                published: 2,
                at: VirtualTime(700),
                ..Default::default()
            }],
            peak_unresolved: 2,
        };
        EngineReport::from_shards(vec![shard], 1)
    }

    #[test]
    fn human_mode_emits_no_document() {
        let mut rep = Reporter::new(ReportFormat::Human);
        rep.candidates(10, 4, 0.3);
        rep.labeled(&LabelingResult::new());
        assert_eq!(rep.finish(), None);
    }

    #[test]
    fn json_mode_accumulates_one_document() {
        let mut rep = Reporter::new(ReportFormat::Json);
        rep.candidates(10, 4, 0.3);
        let mut result = LabelingResult::new();
        result.record(Pair::new(0, 1), Label::Matching, Provenance::Crowdsourced);
        rep.labeled(&result);
        rep.engine_oracle(&tiny_report());
        rep.timings(&MatcherTimings::default());
        let doc = rep.finish().expect("json document");
        assert!(doc.starts_with("{\"schema\": \"crowdjoin-report/1\""), "{doc}");
        assert!(doc.contains("\"candidates\": 4"), "{doc}");
        assert!(doc.contains("\"labeled\": {\"total\": 1"), "{doc}");
        assert!(doc.contains("\"critical_path_rounds\": 2"), "{doc}");
        assert!(doc.contains("\"round_metrics\": [{\"round\": 1, \"published\": 2"), "{doc}");
        assert!(doc.ends_with("}\n"), "{doc}");
    }

    #[test]
    fn timings_read_back_from_the_registry() {
        crowdjoin_obs::reset_metrics();
        crowdjoin_obs::counter("matcher.tokenize.us", NO_SHARD).add(1_500);
        crowdjoin_obs::counter("matcher.index.us", NO_SHARD).add(2_500);
        crowdjoin_obs::counter("matcher.prefix.us", NO_SHARD).add(700);
        crowdjoin_obs::counter("matcher.candidates.us", NO_SHARD).add(10_000);
        crowdjoin_obs::counter("join.label.us", NO_SHARD).add(42);
        crowdjoin_obs::counter("matcher.blocks", NO_SHARD).add(7);
        crowdjoin_obs::counter("matcher.blocks.len_on", NO_SHARD).add(5);
        crowdjoin_obs::counter("matcher.blocks.pos_on", NO_SHARD).add(2);
        let t = MatcherTimings::from_metrics();
        assert_eq!(t.tokenize, Duration::from_micros(1_500));
        assert_eq!(t.index, Duration::from_micros(2_500));
        assert_eq!(t.prefix, Duration::from_micros(700));
        assert_eq!(t.candidates, Duration::from_micros(10_000));
        assert_eq!(t.join, Duration::from_micros(42));
        assert_eq!((t.blocks, t.blocks_len_on, t.blocks_pos_on), (7, 5, 2));
        crowdjoin_obs::reset_metrics();
    }

    #[test]
    fn engine_json_includes_rollups() {
        let json = engine_json(&tiny_report());
        assert!(json.contains("\"shards\": 1"), "{json}");
        assert!(json.contains("\"completion_ms\": 1500"), "{json}");
        assert!(json.contains("\"peak_unresolved\": 2"), "{json}");
        // Oracle run: no platforms, waste guarded to 0, not NaN.
        assert!(json.contains("\"partial_hit_waste\": 0.0000"), "{json}");
    }
}
