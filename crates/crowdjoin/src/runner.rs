//! Platform-driven labeling runs.
//!
//! These runners connect the labeling framework (`crowdjoin-core`) to the
//! discrete-event crowd platform (`crowdjoin-sim`) and implement the
//! execution modes of the paper's Section 6.3/6.4 experiments:
//!
//! * **Transitive, parallel** — [`run_parallel_on_platform`], with or
//!   without the *instant decision* optimization: without it, the next batch
//!   of pairs is computed only after every published pair is labeled; with
//!   it, after every HIT resolution.
//! * **Non-transitive** — [`run_non_transitive_on_platform`]: every pair is
//!   published up front and taken at face value (the prior-work baseline).
//! * **Sequential replay** — [`replay_pairs_sequentially`]: the Table 1
//!   Non-Parallel arm, publishing the same pairs one HIT at a time.
//! * **Sharded** — [`run_sharded_on_platform`] /
//!   [`run_sharded_with_oracle`]: the `crowdjoin-engine` execution engine,
//!   partitioning the candidate graph into connected-component shards and
//!   labeling them on a worker pool.

use crowdjoin_core::GroundTruth;
use crowdjoin_core::{Label, LabelingResult, Pair, ParallelLabeler, Provenance, ScoredPair};
use crowdjoin_sim::{Platform, PlatformStats, TaskSpec, VirtualTime};
use crowdjoin_util::FxHashMap;

/// One point of the Figure 15 series: platform occupancy as labeling
/// progresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AvailabilitySample {
    /// Pairs crowdsourced (resolved) so far.
    pub crowdsourced: usize,
    /// Pairs still open on the platform (unclaimed assignments).
    pub open_pairs: usize,
    /// Virtual time of the sample.
    pub time: VirtualTime,
}

/// Outcome of a platform-driven run.
#[derive(Debug, Clone)]
pub struct CrowdRunReport {
    /// The labeling result (labels, provenance, conflicts).
    pub result: LabelingResult,
    /// Platform-side statistics (HITs, assignments, cost).
    pub stats: PlatformStats,
    /// Virtual completion time.
    pub completion: VirtualTime,
    /// Occupancy series (one sample per resolution event).
    pub series: Vec<AvailabilitySample>,
    /// Number of publish rounds the labeler needed.
    pub publish_rounds: usize,
}

fn to_tasks(
    batch: &[ScoredPair],
    truth: &GroundTruth,
    ids: &mut FxHashMap<u64, Pair>,
    next_id: &mut u64,
) -> Vec<TaskSpec> {
    batch
        .iter()
        .map(|sp| {
            let id = *next_id;
            *next_id += 1;
            ids.insert(id, sp.pair);
            TaskSpec { id, truth: truth.is_matching(sp.pair), priority: sp.likelihood }
        })
        .collect()
}

/// Runs the parallel labeler against a crowd platform.
///
/// `instant_decision` controls when the next publishable set is computed:
/// after *every* HIT resolution (`true`, the Section 5.2 optimization) or
/// only once all outstanding pairs are labeled (`false`, plain Algorithm 2).
///
/// Publishable pairs are *staged* and released in full HITs of the
/// platform's batch size; partial HITs go out only when nothing else is in
/// flight (otherwise iterative publishing would fragment into tiny HITs and
/// waste money — the batching optimization of Section 6.4).
///
/// The platform's workers answer according to their accuracy; with noisy
/// configs the result can contain wrong and conflicting labels exactly as in
/// the paper's Table 2 runs.
///
/// # Panics
///
/// Panics if the labeler gets stuck (platform idle, labeling incomplete, and
/// no publishable pairs) — impossible for well-formed inputs.
#[must_use]
pub fn run_parallel_on_platform(
    num_objects: usize,
    order: Vec<ScoredPair>,
    truth: &GroundTruth,
    platform: &mut Platform,
    instant_decision: bool,
) -> CrowdRunReport {
    let mut labeler = ParallelLabeler::new(num_objects, order);
    let mut series = Vec::new();
    // The drive loop (staging, full-HIT batching, instant decision, idle
    // flush) is the engine's shared implementation, so the single-platform
    // and sharded arms cannot drift apart.
    let publish_rounds = crowdjoin_engine::drive_to_completion(
        &mut labeler,
        platform,
        instant_decision,
        &|pair| truth.is_matching(pair),
        &mut |crowdsourced, open_pairs, time| {
            series.push(AvailabilitySample { crowdsourced, open_pairs, time });
        },
    );

    CrowdRunReport {
        result: labeler.into_result(),
        stats: platform.stats(),
        completion: platform.stats().last_resolution,
        series,
        publish_rounds,
    }
}

/// The non-transitive baseline on a platform: publish everything at once,
/// accept every majority vote.
#[must_use]
pub fn run_non_transitive_on_platform(
    order: &[ScoredPair],
    truth: &GroundTruth,
    platform: &mut Platform,
) -> CrowdRunReport {
    let mut ids: FxHashMap<u64, Pair> = FxHashMap::default();
    let mut next_id = 0u64;
    let tasks = to_tasks(order, truth, &mut ids, &mut next_id);
    platform.publish(tasks);

    let mut result = LabelingResult::new();
    let mut series = Vec::new();
    while let Some((time, resolved)) = platform.step() {
        for r in &resolved {
            let label = if r.label { Label::Matching } else { Label::NonMatching };
            result.record(ids[&r.id], label, Provenance::Crowdsourced);
        }
        series.push(AvailabilitySample {
            crowdsourced: result.num_crowdsourced(),
            open_pairs: platform.num_open_pairs(),
            time,
        });
    }
    CrowdRunReport {
        result,
        stats: platform.stats(),
        completion: platform.stats().last_resolution,
        series,
        publish_rounds: 1,
    }
}

/// Publishes the given pairs one HIT at a time, waiting for each HIT to
/// complete before publishing the next — the Table 1 "Non-Parallel" arm
/// (same HITs as the parallel run, serialized publishing).
///
/// The next HIT is published the moment the previous one resolves; late
/// worker arrivals stay scheduled and simply find the newer HIT, as on a
/// real platform.
#[must_use]
pub fn replay_pairs_sequentially(
    pairs: &[ScoredPair],
    truth: &GroundTruth,
    platform: &mut Platform,
    batch_size: usize,
) -> CrowdRunReport {
    let mut ids: FxHashMap<u64, Pair> = FxHashMap::default();
    let mut next_id = 0u64;
    let mut result = LabelingResult::new();
    let mut series = Vec::new();
    for chunk in pairs.chunks(batch_size.max(1)) {
        let tasks = to_tasks(chunk, truth, &mut ids, &mut next_id);
        platform.publish(tasks);
        let mut remaining = chunk.len();
        while remaining > 0 {
            let (time, resolved) =
                platform.step().expect("published chunk must eventually resolve");
            for r in &resolved {
                let label = if r.label { Label::Matching } else { Label::NonMatching };
                result.record(ids[&r.id], label, Provenance::Crowdsourced);
            }
            remaining -= resolved.len();
            series.push(AvailabilitySample {
                crowdsourced: result.num_crowdsourced(),
                open_pairs: platform.num_open_pairs(),
                time,
            });
        }
    }
    CrowdRunReport {
        result,
        stats: platform.stats(),
        completion: platform.stats().last_resolution,
        series,
        publish_rounds: pairs.len().div_ceil(batch_size.max(1)),
    }
}

/// Runs the sharded execution engine against per-shard platform instances
/// (one deterministic simulator per shard, virtual completion time = the
/// critical path over shards), multiplexed by the non-blocking event loop —
/// thousands of shards run on a bounded worker pool, with optional dynamic
/// re-sharding between publish rounds. Thin facade over
/// [`crowdjoin_engine::run_on_platform`] taking the same inputs as
/// [`run_parallel_on_platform`].
#[must_use]
pub fn run_sharded_on_platform(
    num_objects: usize,
    order: &[ScoredPair],
    truth: &GroundTruth,
    platform: &crowdjoin_sim::PlatformConfig,
    engine: &crowdjoin_engine::EngineConfig,
) -> crowdjoin_engine::EngineReport {
    crowdjoin_engine::run_on_platform(num_objects, order, truth, platform, engine)
}

/// Resumes a killed journaled platform run from its write-ahead journal:
/// paid-for answers are replayed (never re-asked), only the rest are
/// crowdsourced, and the final report is bit-identical to an uninterrupted
/// run's. Thin facade over [`crowdjoin_engine::Engine::resume`] taking the
/// same inputs as [`run_sharded_on_platform`].
///
/// # Errors
///
/// Everything [`crowdjoin_engine::Engine::resume`] raises: a corrupt or
/// foreign journal, mismatched inputs/seeds/flags, or I/O failure.
pub fn resume_sharded_on_platform(
    num_objects: usize,
    order: &[ScoredPair],
    truth: &GroundTruth,
    platform: &crowdjoin_sim::PlatformConfig,
    engine: &crowdjoin_engine::EngineConfig,
    journal: &std::path::Path,
) -> Result<crowdjoin_engine::EngineReport, crowdjoin_engine::wal::WalError> {
    crowdjoin_engine::Engine::new(num_objects, order, truth, platform, engine.clone())
        .resume(journal)
}

/// The blocking thread-per-shard reference arm of
/// [`run_sharded_on_platform`]: identical per-shard simulations driven to
/// completion one worker thread at a time. Kept for equivalence testing and
/// comparison; prefer the event-loop entry point. Thin facade over
/// [`crowdjoin_engine::run_on_platform_threaded`].
#[must_use]
pub fn run_sharded_on_platform_threaded(
    num_objects: usize,
    order: &[ScoredPair],
    truth: &GroundTruth,
    platform: &crowdjoin_sim::PlatformConfig,
    engine: &crowdjoin_engine::EngineConfig,
) -> crowdjoin_engine::EngineReport {
    crowdjoin_engine::run_on_platform_threaded(num_objects, order, truth, platform, engine)
}

/// Runs the sharded execution engine against any thread-safe oracle. Thin
/// facade over [`crowdjoin_engine::run_with_oracle`].
#[must_use]
pub fn run_sharded_with_oracle<O: crowdjoin_engine::SharedOracle + ?Sized>(
    num_objects: usize,
    order: &[ScoredPair],
    oracle: &O,
    engine: &crowdjoin_engine::EngineConfig,
) -> crowdjoin_engine::EngineReport {
    crowdjoin_engine::run_with_oracle(num_objects, order, oracle, engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdjoin_core::{sort_pairs, CandidateSet, SortStrategy};
    use crowdjoin_sim::PlatformConfig;

    /// The Figure 3 running example.
    fn running_example() -> (CandidateSet, GroundTruth) {
        let truth = GroundTruth::from_clusters(6, &[vec![0, 1, 2], vec![3, 4]]);
        let pairs = vec![
            ScoredPair::new(Pair::new(0, 1), 0.95),
            ScoredPair::new(Pair::new(1, 2), 0.90),
            ScoredPair::new(Pair::new(0, 5), 0.85),
            ScoredPair::new(Pair::new(0, 2), 0.80),
            ScoredPair::new(Pair::new(3, 4), 0.75),
            ScoredPair::new(Pair::new(3, 5), 0.70),
            ScoredPair::new(Pair::new(1, 3), 0.65),
            ScoredPair::new(Pair::new(4, 5), 0.60),
        ];
        (CandidateSet::new(6, pairs), truth)
    }

    #[test]
    fn parallel_on_platform_matches_oracle_run() {
        let (cs, truth) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let mut platform = Platform::new(PlatformConfig::perfect_workers(7));
        let report = run_parallel_on_platform(cs.num_objects(), order, &truth, &mut platform, true);
        assert_eq!(report.result.num_crowdsourced(), 6);
        assert_eq!(report.result.num_deduced(), 2);
        for sp in cs.pairs() {
            assert_eq!(report.result.label_of(sp.pair), Some(truth.label_of(sp.pair)));
        }
        assert!(report.completion > VirtualTime::ZERO);
    }

    #[test]
    fn non_transitive_labels_everything() {
        let (cs, truth) = running_example();
        let mut platform = Platform::new(PlatformConfig::perfect_workers(9));
        let report = run_non_transitive_on_platform(cs.pairs(), &truth, &mut platform);
        assert_eq!(report.result.num_crowdsourced(), 8);
        assert_eq!(report.result.num_deduced(), 0);
    }

    #[test]
    fn sequential_replay_is_slower_than_parallel() {
        let (cs, truth) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);

        let mut p1 = Platform::new(PlatformConfig::perfect_workers(4));
        let par = run_parallel_on_platform(cs.num_objects(), order.clone(), &truth, &mut p1, true);

        // Replay the same crowdsourced pairs one 2-pair HIT at a time.
        let crowdsourced: Vec<ScoredPair> = order
            .iter()
            .copied()
            .filter(|sp| par.result.provenance_of(sp.pair) == Some(Provenance::Crowdsourced))
            .collect();
        let mut p2 = Platform::new(PlatformConfig::perfect_workers(4));
        let seq = replay_pairs_sequentially(&crowdsourced, &truth, &mut p2, 2);
        assert_eq!(seq.result.num_crowdsourced(), par.result.num_crowdsourced());
        assert!(
            seq.completion > par.completion,
            "sequential {:?} should be slower than parallel {:?}",
            seq.completion,
            par.completion
        );
    }

    #[test]
    fn instant_decision_never_increases_rounds_needed() {
        let (cs, truth) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let mut p1 = Platform::new(PlatformConfig::perfect_workers(3));
        let plain =
            run_parallel_on_platform(cs.num_objects(), order.clone(), &truth, &mut p1, false);
        let mut p2 = Platform::new(PlatformConfig::perfect_workers(3));
        let id = run_parallel_on_platform(cs.num_objects(), order, &truth, &mut p2, true);
        // Same crowdsourcing cost either way (consistent answers).
        assert_eq!(plain.result.num_crowdsourced(), id.result.num_crowdsourced());
    }
}
