//! The streaming job facade: records arrive over time, candidates are
//! discovered incrementally, and closing the stream hands a canonical
//! dataset + candidate order to the **unmodified batch engine**.
//!
//! ## Shape
//!
//! A [`StreamJob`] wraps the matcher's incremental join
//! ([`crowdjoin_matcher::StreamMatcher`]) and adds the service-level
//! concerns:
//!
//! * **External identity.** Every streamed record carries a caller-assigned
//!   external id. Arrival order is an accident of the transport; external
//!   ids are the stable identity. [`StreamJob::close`] sorts by external id
//!   and re-indexes through `StreamMatcher::close_canonical`, so the final
//!   `(Dataset, candidates)` is **bit-identical across arrival orders** —
//!   and bit-identical to a batch run over the same records in external-id
//!   order. Everything downstream (engine, shards, money, reports) then *is*
//!   the batch path, equal by construction at any shard count.
//! * **Mid-job component admission.** Each insert's delta pairs are
//!   union-folded into a provisional component structure
//!   ([`StreamJob::num_components`]), the statistic re-sharding rebalances
//!   on; eager mid-stream labeling lives in
//!   [`crowdjoin_engine::StreamEngine`].
//! * **Durability.** With a journal attached, every ingest batch is
//!   write-ahead logged to `FILE.stream` (see
//!   [`crowdjoin_wal::StreamJournal`]) *before* it is applied, so a killed
//!   stream resumes from the journal and re-derives the identical state.
//!   The engine's answer journal (`FILE`) is untouched by streaming — the
//!   close path feeds the canonical order to the ordinary journaled engine,
//!   whose file stays byte-identical to a batch run's.

use crowdjoin_graph::UnionFind;
use crowdjoin_matcher::{FieldMeasure, MatcherConfig, ScoredCandidate, StreamMatcher};
use crowdjoin_records::{Dataset, Record, Schema};
use crowdjoin_util::FxHashSet;
use crowdjoin_wal::{
    fnv1a64, open_resume_stream, SealRecord, StreamEntry, StreamHeader, StreamJournal, WalError,
    STREAM_FORMAT_VERSION,
};
use std::path::Path;

/// What one [`StreamJob::ingest`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamIngestReport {
    /// Records inserted.
    pub inserted: usize,
    /// Delta candidate pairs discovered (new record × existing corpus).
    pub delta_pairs: usize,
    /// Inserts that bridged two previously-distinct provisional components.
    pub components_joined: usize,
    /// Inserts that opened a brand-new provisional component.
    pub components_opened: usize,
}

/// A long-running streaming join: records in, canonical batch job out.
#[derive(Debug)]
pub struct StreamJob {
    matcher: StreamMatcher,
    /// `externals[arrival] = external id` of the record inserted as
    /// arrival-id `arrival`.
    externals: Vec<u32>,
    external_set: FxHashSet<u32>,
    /// Provisional connected components over arrival ids, grown from the
    /// matcher's delta pairs.
    components: UnionFind,
    active: Vec<bool>,
    journal: Option<StreamJournal>,
    config_hash: u64,
    seed: u64,
    sealed: bool,
}

/// Fingerprint of the streaming job's matcher configuration and schema.
/// Field-by-field (floats by exact bits), **not** a `Debug`-string hash —
/// that rendering is unstable across toolchains and would refuse to
/// resume journals of identical jobs. `threads` is excluded (output is
/// identical for every value); `strategy` is excluded because streaming
/// is exact-only (enforced by `StreamMatcher::new`).
fn stream_config_hash(schema: &Schema, config: &MatcherConfig) -> u64 {
    let mut words: Vec<u64> = vec![
        config.min_likelihood.to_bits(),
        config.cosine_weight.to_bits(),
        config.jaccard_weight.to_bits(),
        config.field_weights.len() as u64,
    ];
    words.extend(config.field_weights.iter().map(|w| w.to_bits()));
    words.push(config.extra_measures.len() as u64);
    for em in &config.extra_measures {
        words.push(em.field as u64);
        words.push(match em.measure {
            FieldMeasure::Levenshtein => 0,
            FieldMeasure::JaroWinkler => 1,
            FieldMeasure::NumericRatio => 2,
            FieldMeasure::Exact => 3,
        });
        words.push(em.weight.to_bits());
    }
    for f in schema.fields() {
        words.push(fnv1a64(f.bytes()));
    }
    fnv1a64(words.into_iter().flat_map(u64::to_le_bytes))
}

/// Fingerprint of the canonical labeling order (same recipe as the answer
/// journal's `order_hash`: pairs and likelihood bits, in order).
fn candidates_order_hash(candidates: &[ScoredCandidate]) -> u64 {
    fnv1a64(candidates.iter().flat_map(|c| {
        c.a.to_le_bytes()
            .into_iter()
            .chain(c.b.to_le_bytes())
            .chain(c.likelihood.to_bits().to_le_bytes())
    }))
}

impl StreamJob {
    /// An unjournaled streaming job (in-memory only; a crash loses the
    /// stream).
    ///
    /// # Panics
    ///
    /// Panics on an invalid matcher configuration or an LSH strategy —
    /// streaming is the exact (lossless) path.
    #[must_use]
    pub fn new(schema: Schema, config: MatcherConfig, seed: u64) -> Self {
        let config_hash = stream_config_hash(&schema, &config);
        Self {
            matcher: StreamMatcher::new(schema, config),
            externals: Vec::new(),
            external_set: FxHashSet::default(),
            components: UnionFind::new(0),
            active: Vec::new(),
            journal: None,
            config_hash,
            seed,
            sealed: false,
        }
    }

    /// A journaled streaming job: creates the stream journal at `path`
    /// (conventionally the engine journal's path + `.stream`) and
    /// write-ahead logs every ingest.
    ///
    /// # Errors
    ///
    /// [`WalError::AlreadyExists`] for a non-empty file (resume it
    /// instead), [`WalError::Locked`] / [`WalError::Io`] as usual.
    pub fn with_journal(
        schema: Schema,
        config: MatcherConfig,
        seed: u64,
        path: &Path,
    ) -> Result<Self, WalError> {
        let mut job = Self::new(schema, config, seed);
        let header = StreamHeader {
            version: STREAM_FORMAT_VERSION,
            arity: job.matcher.dataset().table.schema().arity() as u32,
            config_hash: job.config_hash,
            seed,
        };
        job.journal = Some(StreamJournal::create(path, &header)?);
        Ok(job)
    }

    /// Resumes a killed streaming job from its journal: verifies the
    /// header fingerprints, truncates any torn tail, replays every
    /// journaled ingest through the live insert path (re-deriving the
    /// identical matcher state), and keeps appending to the same journal.
    ///
    /// Returns the rebuilt job and the number of records replayed, so the
    /// caller can skip that prefix of its input.
    ///
    /// # Errors
    ///
    /// [`WalError::HeaderMismatch`] when the schema, matcher
    /// configuration, or seed differ from the journaled job; the decode
    /// errors of [`crowdjoin_wal::read_stream_journal`]; plus
    /// [`WalError::Locked`] / [`WalError::Io`].
    pub fn resume(
        schema: Schema,
        config: MatcherConfig,
        seed: u64,
        path: &Path,
    ) -> Result<(Self, usize), WalError> {
        let (contents, journal) = open_resume_stream(path)?;
        let mut job = Self::new(schema, config, seed);
        let header = &contents.header;
        let checks: [(&'static str, u64, u64); 3] = [
            ("arity", u64::from(header.arity), job.matcher.dataset().table.schema().arity() as u64),
            ("config_hash (matcher config/schema)", header.config_hash, job.config_hash),
            ("seed", header.seed, job.seed),
        ];
        for (field, journaled, ours) in checks {
            if journaled != ours {
                return Err(WalError::HeaderMismatch { field, journal: journaled, job: ours });
            }
        }
        let (entries, seal) = contents.replay()?;
        for entry in &entries {
            job.insert_one(entry.external, &Record::new(entry.fields.clone()));
        }
        job.sealed = seal.is_some();
        job.journal = Some(journal);
        Ok((job, entries.len()))
    }

    /// Records streamed so far.
    #[must_use]
    pub fn num_records(&self) -> usize {
        self.externals.len()
    }

    /// Candidate pairs materialized so far (a superset of the final set;
    /// see [`crowdjoin_matcher::StreamMatcher`]).
    #[must_use]
    pub fn num_materialized(&self) -> usize {
        self.matcher.num_materialized()
    }

    /// `true` once the stream was closed (a resumed-from-journal job may
    /// already be sealed; it can only be closed again, not extended).
    #[must_use]
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Live provisional components (over records connected by a
    /// materialized candidate pair) — the structure re-sharding rebalances
    /// at the next barrier.
    #[must_use]
    pub fn num_components(&mut self) -> usize {
        let mut roots = FxHashSet::default();
        for i in 0..self.active.len() {
            if self.active[i] {
                roots.insert(self.components.find(i as u32));
            }
        }
        roots.len()
    }

    /// Ingests a batch of `(external id, record)` arrivals: journals them
    /// durably (when a journal is attached), then inserts each into the
    /// incremental join and folds its delta pairs into the provisional
    /// components.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the journal append fails — nothing is applied
    /// in that case (log-before-apply; on resume the journal is the
    /// truth).
    ///
    /// # Panics
    ///
    /// Panics on a duplicate external id, a record arity mismatch, or
    /// ingesting into a sealed stream.
    pub fn ingest(&mut self, records: &[(u32, Record)]) -> Result<StreamIngestReport, WalError> {
        assert!(!self.sealed, "cannot ingest into a sealed stream");
        let mut span = crowdjoin_obs::obs_span!(
            "stream",
            "stream.ingest",
            crowdjoin_obs::NO_SHARD,
            records = records.len() as u64,
        );
        for (external, _) in records {
            assert!(
                !self.external_set.contains(external)
                    && records.iter().filter(|(e, _)| e == external).count() == 1,
                "external id {external} appears twice in the stream"
            );
        }
        if let Some(journal) = &self.journal {
            let entries: Vec<StreamEntry> = records
                .iter()
                .map(|(external, record)| StreamEntry {
                    external: *external,
                    fields: record.values().to_vec(),
                })
                .collect();
            journal.append_ingest(self.externals.len() as u64, &entries)?;
        }
        let mut report = StreamIngestReport::default();
        for (external, record) in records {
            let (delta_pairs, joined, opened) = self.insert_one(*external, record);
            report.inserted += 1;
            report.delta_pairs += delta_pairs;
            report.components_joined += joined;
            report.components_opened += opened;
        }
        if crowdjoin_obs::enabled() {
            crowdjoin_obs::counter("stream.records", crowdjoin_obs::NO_SHARD)
                .add(report.inserted as u64);
            crowdjoin_obs::counter("stream.delta_pairs", crowdjoin_obs::NO_SHARD)
                .add(report.delta_pairs as u64);
        }
        span.set_field("delta_pairs", report.delta_pairs as u64);
        Ok(report)
    }

    /// Applies one arrival (no journaling — the ingest/replay callers own
    /// that). Returns `(delta pairs, components joined, components
    /// opened)`.
    fn insert_one(&mut self, external: u32, record: &Record) -> (usize, usize, usize) {
        assert!(
            self.external_set.insert(external),
            "external id {external} appears twice in the stream"
        );
        let delta = self.matcher.insert(record);
        self.externals.push(external);
        let new_id = self.components.push();
        debug_assert_eq!(new_id, delta.record);
        self.active.push(false);
        let (mut joined, mut opened) = (0usize, 0usize);
        for dp in &delta.pairs {
            let partner_active = self.active[dp.a as usize];
            let self_active = self.active[delta.record as usize];
            if !partner_active && !self_active {
                opened += 1;
            } else if partner_active
                && self_active
                && self.components.find(dp.a) != self.components.find(delta.record)
            {
                joined += 1;
            }
            self.components.union(dp.a, delta.record);
            self.active[dp.a as usize] = true;
            self.active[delta.record as usize] = true;
        }
        (delta.pairs.len(), joined, opened)
    }

    /// Closes the stream: re-indexes the arrivals into **external-id
    /// order**, produces the exact candidate set over that canonical
    /// dataset (bit-identical to `generate_candidates` on it), seals the
    /// journal with the order fingerprint, and returns the canonical
    /// `(Dataset, candidates)` for the unmodified batch engine path.
    ///
    /// The dataset's record `r` is the streamed record with the `r`-th
    /// smallest external id.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the seal append fails.
    pub fn close(mut self) -> Result<(Dataset, Vec<ScoredCandidate>), WalError> {
        let _span = crowdjoin_obs::obs_span!("stream", "stream.close", crowdjoin_obs::NO_SHARD);
        let mut order: Vec<u32> = (0..self.externals.len() as u32).collect();
        order.sort_by_key(|&arrival| self.externals[arrival as usize]);
        let (dataset, candidates) = self.matcher.close_canonical(&order);
        if let Some(journal) = &self.journal {
            if !self.sealed {
                journal.append_seal(&SealRecord {
                    num_records: self.externals.len() as u64,
                    order_len: candidates.len() as u64,
                    order_hash: candidates_order_hash(&candidates),
                })?;
                self.sealed = true;
            }
        }
        Ok((dataset, candidates))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdjoin_matcher::generate_candidates;
    use crowdjoin_records::{generate_paper, ClusterSpec, PaperGenConfig, PerturbConfig};

    fn dataset() -> Dataset {
        generate_paper(&PaperGenConfig {
            num_records: 30,
            clusters: ClusterSpec::Explicit(vec![(4, 3), (2, 4)]),
            perturb: PerturbConfig::light(),
            sibling_probability: 0.0,
            seed: 9,
        })
    }

    fn config() -> MatcherConfig {
        MatcherConfig { min_likelihood: 0.2, ..MatcherConfig::for_arity(5) }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("crowdjoin-streamjob-{}-{name}", std::process::id()))
    }

    /// Streams `ds` in the given arrival order (external id = original
    /// dataset index) and closes.
    fn stream_and_close(ds: &Dataset, arrivals: &[usize]) -> (Dataset, Vec<ScoredCandidate>) {
        let mut job = StreamJob::new(ds.table.schema().clone(), config(), 0);
        for &i in arrivals {
            job.ingest(&[(i as u32, ds.table.record(i).clone())]).expect("unjournaled");
        }
        job.close().expect("unjournaled close")
    }

    #[test]
    fn close_matches_batch_for_any_arrival_order() {
        let ds = dataset();
        let batch = generate_candidates(&ds, &config());
        let forward: Vec<usize> = (0..ds.len()).collect();
        let mut reversed = forward.clone();
        reversed.reverse();
        for arrivals in [forward, reversed] {
            let (closed_ds, streamed) = stream_and_close(&ds, &arrivals);
            assert_eq!(closed_ds.len(), ds.len());
            assert_eq!(streamed.len(), batch.len());
            for (s, b) in streamed.iter().zip(&batch) {
                assert_eq!((s.a, s.b), (b.a, b.b));
                assert_eq!(s.likelihood.to_bits(), b.likelihood.to_bits());
            }
        }
    }

    #[test]
    fn journaled_stream_resumes_to_identical_close() {
        let ds = dataset();
        let path = temp_path("resume.stream");
        let _ = std::fs::remove_file(&path);

        let mut job =
            StreamJob::with_journal(ds.table.schema().clone(), config(), 7, &path).unwrap();
        let half = ds.len() / 2;
        for i in 0..half {
            job.ingest(&[(i as u32, ds.table.record(i).clone())]).unwrap();
        }
        drop(job); // "crash" mid-stream

        let (mut job, replayed) =
            StreamJob::resume(ds.table.schema().clone(), config(), 7, &path).unwrap();
        assert_eq!(replayed, half);
        assert!(!job.is_sealed());
        for i in half..ds.len() {
            job.ingest(&[(i as u32, ds.table.record(i).clone())]).unwrap();
        }
        let (_, streamed) = job.close().unwrap();

        let batch = generate_candidates(&ds, &config());
        assert_eq!(streamed.len(), batch.len());
        for (s, b) in streamed.iter().zip(&batch) {
            assert_eq!((s.a, s.b), (b.a, b.b));
            assert_eq!(s.likelihood.to_bits(), b.likelihood.to_bits());
        }

        // The journal is sealed: a further resume sees the seal.
        let (job, _) = StreamJob::resume(ds.table.schema().clone(), config(), 7, &path).unwrap();
        assert!(job.is_sealed());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_with_different_config_is_refused() {
        let ds = dataset();
        let path = temp_path("mismatch.stream");
        let _ = std::fs::remove_file(&path);
        let mut job =
            StreamJob::with_journal(ds.table.schema().clone(), config(), 7, &path).unwrap();
        job.ingest(&[(0, ds.table.record(0).clone())]).unwrap();
        drop(job);

        let other = MatcherConfig { min_likelihood: 0.4, ..config() };
        let err = StreamJob::resume(ds.table.schema().clone(), other, 7, &path).unwrap_err();
        assert!(matches!(err, WalError::HeaderMismatch { .. }), "{err}");
        let err = StreamJob::resume(ds.table.schema().clone(), config(), 8, &path).unwrap_err();
        assert!(matches!(err, WalError::HeaderMismatch { field: "seed", .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn components_track_delta_pairs() {
        let ds = dataset();
        let mut job = StreamJob::new(ds.table.schema().clone(), config(), 0);
        let mut report = StreamIngestReport::default();
        for i in 0..ds.len() {
            let r = job.ingest(&[(i as u32, ds.table.record(i).clone())]).unwrap();
            report.delta_pairs += r.delta_pairs;
            report.components_joined += r.components_joined;
            report.components_opened += r.components_opened;
        }
        assert_eq!(report.delta_pairs, job.num_materialized());
        assert!(report.components_opened >= 1);
        assert!(job.num_components() >= 1);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_external_id_rejected() {
        let ds = dataset();
        let mut job = StreamJob::new(ds.table.schema().clone(), config(), 0);
        job.ingest(&[(3, ds.table.record(0).clone())]).unwrap();
        job.ingest(&[(3, ds.table.record(1).clone())]).unwrap();
    }
}
