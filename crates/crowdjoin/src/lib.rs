//! # crowdjoin — crowdsourced joins with transitive relations
//!
//! A production-grade reproduction of *Leveraging Transitive Relations for
//! Crowdsourced Joins* (Wang, Li, Kraska, Franklin, Feng — SIGMOD 2013,
//! revised 2014): hybrid human–machine entity resolution that labels every
//! machine-generated candidate pair while **crowdsourcing as few pairs as
//! possible**, deducing the rest via positive/negative transitivity.
//!
//! This facade crate re-exports the whole workspace and adds the glue that
//! joins the layers:
//!
//! | layer | crate | contents |
//! |-------|-------|----------|
//! | deduction substrate | [`graph`] | union–find, ClusterGraph, path oracle |
//! | datasets | [`records`] | Paper/Product generators (Cora / Abt-Buy stand-ins) |
//! | machine matcher | [`matcher`] | tokenizers, similarity, tf-idf join |
//! | labeling framework | [`core`] | orders, sequential/parallel labelers, expected cost |
//! | crowd platform | [`sim`] | discrete-event AMT simulator + the pluggable `CrowdBackend` layer |
//! | external crowd | [`backend_spool`] | spool-directory backend: drive a job with any external answerer |
//! | answer journal | [`wal`] | crash-safe write-ahead journal for resumable jobs |
//! | execution engine | [`engine`] | component sharding, incremental closure, worker-pool scheduler |
//! | integration | [`pipeline`], [`runner`] | dataset→task glue, platform-driven runs |
//!
//! ## End-to-end example
//!
//! ```
//! use crowdjoin::matcher::MatcherConfig;
//! use crowdjoin::records::{generate_paper, ClusterSpec, PaperGenConfig, PerturbConfig};
//! use crowdjoin::{build_task, GroundTruthOracle, SortStrategy};
//!
//! // 1. Machine stage: generate (or load) records, score candidate pairs.
//! let dataset = generate_paper(&PaperGenConfig {
//!     num_records: 60,
//!     clusters: ClusterSpec::Explicit(vec![(6, 3), (2, 6)]),
//!     perturb: PerturbConfig::light(),
//!     sibling_probability: 0.0,
//!     seed: 42,
//! });
//! let (task, truth) = build_task(&dataset, &MatcherConfig::for_arity(5), 0.3);
//!
//! // 2. Crowd stage: label candidates, deducing everything transitivity can.
//! let mut crowd = GroundTruthOracle::new(&truth);
//! let result = task.run_sequential(SortStrategy::ExpectedLikelihood, &mut crowd);
//!
//! assert_eq!(result.num_labeled(), task.candidates().len());
//! assert!(result.num_deduced() > 0, "transitivity saved crowd questions");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pipeline;
pub mod report;
pub mod runner;
pub mod stream;

/// The spool-directory external crowd backend (re-export of
/// `crowdjoin-backend-spool`).
pub use crowdjoin_backend_spool as backend_spool;
/// The labeling framework (re-export of `crowdjoin-core`).
pub use crowdjoin_core as core;
/// The sharded execution engine (re-export of `crowdjoin-engine`).
pub use crowdjoin_engine as engine;
/// The deduction substrate (re-export of `crowdjoin-graph`).
pub use crowdjoin_graph as graph;
/// The machine matcher (re-export of `crowdjoin-matcher`).
pub use crowdjoin_matcher as matcher;
/// The observability layer: tracing, metrics, sinks (re-export of
/// `crowdjoin-obs`).
pub use crowdjoin_obs as obs;
/// Dataset generators (re-export of `crowdjoin-records`).
pub use crowdjoin_records as records;
/// The crowd-platform simulator (re-export of `crowdjoin-sim`).
pub use crowdjoin_sim as sim;
/// Shared utilities (re-export of `crowdjoin-util`).
pub use crowdjoin_util as util;
/// The crash-safe answer journal (re-export of `crowdjoin-wal`).
pub use crowdjoin_wal as wal;

pub use crowdjoin_core::{
    enforce_one_to_one, label_non_transitive, label_sequential, label_with_budget, optimal_cost,
    resolve_entities, run_parallel_rounds, sort_pairs, BudgetedResult, CandidateSet,
    EntityResolution, FixedOracle, GroundTruth, GroundTruthOracle, Label, LabeledPair,
    LabelingResult, LabelingTask, NoisyOracle, OneToOneDeducer, OneToOneOutcome, OptimalCost,
    Oracle, Pair, ParallelLabeler, ParallelRunStats, Provenance, QualityMetrics, ScoredPair,
    SortStrategy, WorldEnumeration,
};
pub use crowdjoin_engine::{
    BackendFactory, CrowdBackend, Engine, EngineConfig, EngineReport, OrderingMode, RoundMetric,
    ShardContext, ShardMetrics, ShardReport, SharedGroundTruth, SharedOracle, SimFactory,
    SyncOracle, TimeSource,
};
pub use pipeline::{build_task, ground_truth_of, to_candidate_set};
pub use runner::{
    replay_pairs_sequentially, resume_sharded_on_platform, run_non_transitive_on_platform,
    run_parallel_on_platform, run_sharded_on_platform, run_sharded_on_platform_threaded,
    run_sharded_with_oracle, AvailabilitySample, CrowdRunReport,
};
pub use stream::{StreamIngestReport, StreamJob};
