//! Event-loop engine tests: the non-blocking `ShardTask` event loop must
//! drive ≥1000 shards on 2 worker threads to outcomes **bit-identical** to
//! the blocking thread-per-shard scheduler (labels, crowdsourced counts,
//! money, per-shard stats, completion time), on synthetic and generated
//! workloads; and dynamic re-sharding must stay label-correct while
//! merging shards as components collapse.

use crowdjoin::matcher::MatcherConfig;
use crowdjoin::records::{
    generate_paper, generate_product, ClusterSpec, PaperGenConfig, PerturbConfig, ProductGenConfig,
};
use crowdjoin::sim::PlatformConfig;
use crowdjoin::{
    build_task, run_sharded_on_platform, run_sharded_on_platform_threaded, sort_pairs,
    CandidateSet, EngineConfig, GroundTruth, Pair, ScoredPair, SortStrategy,
};

/// 1200 disjoint triangle components (3600 objects). Even components are a
/// true 3-cluster, odd components are all-distinct — the latter force a
/// second publish round, so the event loop has to interleave rounds across
/// shards, not just drain them once.
fn thousand_component_workload() -> (usize, Vec<ScoredPair>, GroundTruth) {
    let num_components = 1200;
    let num_objects = 3 * num_components;
    let mut entity: Vec<u32> = (0..num_objects as u32).collect();
    let mut pairs = Vec::with_capacity(3 * num_components);
    for c in 0..num_components {
        let base = (3 * c) as u32;
        if c % 2 == 0 {
            entity[base as usize + 1] = base;
            entity[base as usize + 2] = base;
        }
        let l = 0.95 - (c % 9) as f64 * 0.03;
        pairs.push(ScoredPair::new(Pair::new(base, base + 1), l));
        pairs.push(ScoredPair::new(Pair::new(base + 1, base + 2), l - 0.01));
        pairs.push(ScoredPair::new(Pair::new(base, base + 2), l - 0.02));
    }
    (num_objects, pairs, GroundTruth::new(entity))
}

fn paper_workload() -> (CandidateSet, GroundTruth, Vec<ScoredPair>) {
    let dataset = generate_paper(&PaperGenConfig {
        num_records: 300,
        clusters: ClusterSpec::PowerLaw { alpha: 1.9, max_size: 20, force_max: true },
        perturb: PerturbConfig::light(),
        sibling_probability: 0.2,
        seed: 20130622,
    });
    let (task, truth) = build_task(&dataset, &MatcherConfig::for_arity(5), 0.3);
    let candidates = task.candidates().clone();
    let order = sort_pairs(&candidates, SortStrategy::ExpectedLikelihood);
    (candidates, truth, order)
}

fn product_workload() -> (CandidateSet, GroundTruth, Vec<ScoredPair>) {
    let dataset = generate_product(&ProductGenConfig {
        table_a: 150,
        table_b: 150,
        clusters: ClusterSpec::Explicit(vec![(2, 90), (3, 20), (4, 6), (5, 2), (6, 1)]),
        ..ProductGenConfig::default()
    });
    let matcher = MatcherConfig { field_weights: vec![1.0, 0.25], ..MatcherConfig::for_arity(2) };
    let (task, truth) = build_task(&dataset, &matcher, 0.3);
    let candidates = task.candidates().clone();
    let order = sort_pairs(&candidates, SortStrategy::ExpectedLikelihood);
    (candidates, truth, order)
}

/// Both drivers over identical inputs must agree *exactly*: merged result,
/// money, completion, and every per-shard report.
fn assert_drivers_identical(
    num_objects: usize,
    order: &[ScoredPair],
    truth: &GroundTruth,
    platform: &PlatformConfig,
    engine: &EngineConfig,
) {
    let ev = run_sharded_on_platform(num_objects, order, truth, platform, engine);
    let th = run_sharded_on_platform_threaded(num_objects, order, truth, platform, engine);
    assert_eq!(ev.num_shards(), th.num_shards());
    assert_eq!(ev.result.num_labeled(), th.result.num_labeled());
    assert_eq!(ev.result.num_crowdsourced(), th.result.num_crowdsourced());
    assert_eq!(ev.result.num_deduced(), th.result.num_deduced());
    assert_eq!(ev.result.num_conflicts(), th.result.num_conflicts());
    assert_eq!(ev.total_cost_cents, th.total_cost_cents);
    assert_eq!(ev.completion, th.completion);
    assert_eq!(ev.reshard_generations, 0);
    for sp in order {
        assert_eq!(
            ev.result.label_of(sp.pair),
            th.result.label_of(sp.pair),
            "label diverged on {}",
            sp.pair
        );
        assert_eq!(ev.result.provenance_of(sp.pair), th.result.provenance_of(sp.pair));
    }
    for (a, b) in ev.shards.iter().zip(&th.shards) {
        assert_eq!(a.shard, b.shard);
        assert_eq!(a.stats, b.stats, "shard {} platform stats diverged", a.shard);
        assert_eq!(a.completion, b.completion);
        assert_eq!(a.publish_rounds, b.publish_rounds);
    }
}

/// The acceptance bar: ≥1000 shards multiplexed over 2 worker threads, with
/// labels, crowdsourced counts, and total cost identical to the
/// thread-per-shard path — and correct against ground truth.
#[test]
fn thousand_shards_on_two_threads_match_thread_per_shard() {
    let (num_objects, order, truth) = thousand_component_workload();
    let engine =
        EngineConfig { num_shards: 1200, num_threads: 2, seed: 5, ..EngineConfig::default() };
    let platform = PlatformConfig::perfect_workers(13);

    let report = run_sharded_on_platform(num_objects, &order, &truth, &platform, &engine);
    assert_eq!(report.num_shards(), 1200, "every component must become a shard");
    assert_eq!(report.result.num_labeled(), order.len());
    for sp in &order {
        assert_eq!(report.result.label_of(sp.pair), Some(truth.label_of(sp.pair)));
    }
    // Odd (all-distinct) components need a second round for their held-back
    // third pair, so the loop genuinely interleaves rounds across shards.
    assert!(report.critical_path_rounds() >= 2);

    assert_drivers_identical(num_objects, &order, &truth, &platform, &engine);
}

/// Generated Paper and Product workloads, perfect and noisy crowds: the two
/// drivers must agree bit for bit (noisy answers included — identical
/// per-shard platform seeds mean identical worker behavior).
#[test]
fn event_loop_matches_thread_per_shard_on_generated_workloads() {
    let paper = paper_workload();
    let product = product_workload();
    for (candidates, truth, order) in [&paper, &product] {
        for shards in [1usize, 8] {
            let engine = EngineConfig {
                num_shards: shards,
                num_threads: 2,
                seed: 7,
                ..EngineConfig::default()
            };
            assert_drivers_identical(
                candidates.num_objects(),
                order,
                truth,
                &PlatformConfig::perfect_workers(11),
                &engine,
            );
            // Noisy arm: a bigger crowd so an 8-way split still leaves every
            // shard enough qualification-passing workers to resolve HITs.
            assert_drivers_identical(
                candidates.num_objects(),
                order,
                truth,
                &PlatformConfig { num_workers: 160, ..PlatformConfig::amt_like(23) },
                &engine,
            );
        }
    }
}

/// Dynamic re-sharding: with a perfect crowd the merged generations must
/// still label every pair correctly, run deterministically, never lose or
/// double-count money, and actually merge (components collapse early, so
/// later generations pack fewer shards).
#[test]
fn resharding_stays_correct_and_merges_shards() {
    let (candidates, truth, order) = paper_workload();
    let platform = PlatformConfig::perfect_workers(11);
    let engine = EngineConfig {
        num_shards: 8,
        num_threads: 2,
        seed: 7,
        reshard: true,
        ..EngineConfig::default()
    };
    let run =
        || run_sharded_on_platform(candidates.num_objects(), &order, &truth, &platform, &engine);
    let report = run();

    assert_eq!(report.result.num_labeled(), order.len());
    for sp in candidates.pairs() {
        assert_eq!(
            report.result.label_of(sp.pair),
            Some(truth.label_of(sp.pair)),
            "re-sharded label wrong on {}",
            sp.pair
        );
    }
    assert!(report.reshard_generations >= 1, "round boundaries must trigger re-sharding");
    // Generations run strictly one after another (each barrier waits for
    // every shard), so the critical-path round count chains across them
    // instead of resetting per incarnation.
    assert!(
        report.critical_path_rounds() > report.reshard_generations,
        "{} rounds cannot cover {} sequential generations",
        report.critical_path_rounds(),
        report.reshard_generations
    );
    // Retired + merged incarnations both report; money is the sum of every
    // platform that ran and is internally consistent.
    assert!(report.num_shards() > 8, "retired generations must keep their reports");
    let stats_cost: u64 =
        report.shards.iter().filter_map(|s| s.stats.as_ref()).map(|st| st.total_cost_cents).sum();
    assert_eq!(report.total_cost_cents, stats_cost);

    // Against the same config without re-sharding: merging can only reduce
    // the crowd bill (shared HITs across merged shards; answers are never
    // re-asked) and must not change any label.
    let baseline = run_sharded_on_platform(
        candidates.num_objects(),
        &order,
        &truth,
        &platform,
        &EngineConfig { reshard: false, ..engine.clone() },
    );
    for sp in candidates.pairs() {
        assert_eq!(report.result.label_of(sp.pair), baseline.result.label_of(sp.pair));
    }
    assert!(
        report.result.num_crowdsourced() <= baseline.result.num_crowdsourced(),
        "re-sharding never asks more questions ({} vs {})",
        report.result.num_crowdsourced(),
        baseline.result.num_crowdsourced()
    );

    // Determinism: a second run is bit-identical.
    let again = run();
    assert_eq!(report.total_cost_cents, again.total_cost_cents);
    assert_eq!(report.completion, again.completion);
    assert_eq!(report.reshard_generations, again.reshard_generations);
    for sp in candidates.pairs() {
        assert_eq!(report.result.label_of(sp.pair), again.result.label_of(sp.pair));
    }
}

/// The re-sharded working set shrinks monotonically: later generations run
/// fewer shards, visible as fewer live platforms and less partial-HIT
/// fragmentation on a many-shard workload.
#[test]
fn resharding_reduces_partial_hit_waste_on_many_small_shards() {
    let (num_objects, order, truth) = thousand_component_workload();
    let platform = PlatformConfig::perfect_workers(29);
    let base =
        EngineConfig { num_shards: 1200, num_threads: 2, seed: 3, ..EngineConfig::default() };
    let plain = run_sharded_on_platform(num_objects, &order, &truth, &platform, &base);
    let merged = run_sharded_on_platform(
        num_objects,
        &order,
        &truth,
        &platform,
        &EngineConfig { reshard: true, ..base.clone() },
    );
    for sp in &order {
        assert_eq!(merged.result.label_of(sp.pair), Some(truth.label_of(sp.pair)));
    }
    assert!(merged.reshard_generations >= 1);
    assert!(
        merged.partial_hit_waste() < plain.partial_hit_waste(),
        "merging 600 second-round singleton batches into shared HITs must cut waste \
         (merged {:.3} vs plain {:.3})",
        merged.partial_hit_waste(),
        plain.partial_hit_waste()
    );
    assert!(
        merged.total_cost_cents < plain.total_cost_cents,
        "fewer HITs must cost less (merged {}¢ vs plain {}¢)",
        merged.total_cost_cents,
        plain.total_cost_cents
    );
}
