//! Property: the incremental matcher is **lossless and bit-identical** to
//! the batch oracle regardless of arrival order. Streaming a random corpus
//! record-by-record through [`StreamMatcher::insert`] and snapshotting must
//! equal the brute-force oracle over the full (arrival-ordered) corpus —
//! same pairs, same likelihood bits — and every final candidate must have
//! been *discovered* as a delta pair at the moment its later endpoint
//! arrived (the union of all insert deltas covers the final set; no pair
//! appears only at snapshot time).
//!
//! As in `filter_equivalence`, the oracle side is restricted to
//! token-sharing pairs: pairs that qualify on extra measures alone are
//! outside the generation contract.

use crowdjoin::matcher::{
    generate_candidates_bruteforce, MatcherConfig, ScoredCandidate, StreamMatcher, TokenizedCorpus,
};
use crowdjoin::records::{
    generate_paper, generate_product, ClusterSpec, Dataset, PaperGenConfig, PerturbConfig,
    ProductGenConfig,
};
use crowdjoin::util::FxHashSet;
use proptest::prelude::*;

/// `true` when the sorted token sets intersect.
fn shares_token(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

fn dataset_for(kind: u64, n: usize, seed: u64) -> Dataset {
    match kind % 3 {
        0 => generate_paper(&PaperGenConfig {
            num_records: n,
            clusters: ClusterSpec::PowerLaw {
                alpha: 1.9,
                max_size: (n / 5).max(2),
                force_max: false,
            },
            perturb: PerturbConfig::heavy(),
            sibling_probability: 0.2,
            seed,
        }),
        1 => generate_product(&ProductGenConfig {
            table_a: n / 2,
            table_b: n - n / 2,
            clusters: ClusterSpec::Explicit(vec![(2, n / 6)]),
            perturb: PerturbConfig::heavy(),
            seed,
        }),
        _ => generate_product(&ProductGenConfig {
            table_a: n / 3,
            table_b: n - n / 3,
            clusters: ClusterSpec::Explicit(vec![(3, n / 9), (2, n / 10)]),
            perturb: PerturbConfig::light(),
            seed,
        }),
    }
}

/// Seeded Fisher–Yates (splitmix64 stream) — a deterministic arrival order
/// per (n, seed) without pulling in an RNG crate.
fn shuffled(n: usize, seed: u64) -> Vec<usize> {
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, (next() % (i as u64 + 1)) as usize);
    }
    order
}

/// Streams `dataset` in `arrivals` order and pins the snapshot against the
/// brute-force oracle over the arrival-ordered corpus (a streaming
/// self-join: `split = None`).
fn check_stream(
    dataset: &Dataset,
    config: &MatcherConfig,
    arrivals: &[usize],
) -> Result<(), TestCaseError> {
    let schema = dataset.table.schema().clone();
    let mut arrival_table = crowdjoin::records::Table::new(schema.clone());
    for &i in arrivals {
        arrival_table.push(dataset.table.record(i).clone());
    }
    let arrival_ds = Dataset {
        entity_of: arrivals.iter().map(|&i| dataset.entity_of[i]).collect(),
        table: arrival_table,
        split: None,
        name: "stream-oracle".into(),
    };

    let mut matcher = StreamMatcher::new(schema, config.clone());
    let mut discovered: FxHashSet<(u32, u32)> = FxHashSet::default();
    for &i in arrivals {
        let delta = matcher.insert(dataset.table.record(i));
        for dp in &delta.pairs {
            prop_assert!(dp.a < dp.b, "delta pair must point old → new");
            prop_assert_eq!(dp.b, delta.record);
            prop_assert!(discovered.insert((dp.a, dp.b)), "pair re-discovered");
        }
    }
    let streamed = matcher.candidates();

    let oracle_all = generate_candidates_bruteforce(&arrival_ds, config);
    let corpus = TokenizedCorpus::build(&arrival_ds);
    let oracle: Vec<ScoredCandidate> = oracle_all
        .into_iter()
        .filter(|c| shares_token(corpus.token_set(c.a as usize), corpus.token_set(c.b as usize)))
        .collect();

    prop_assert_eq!(
        streamed.len(),
        oracle.len(),
        "candidate count mismatch (floor {}, {} records)",
        config.min_likelihood,
        arrivals.len()
    );
    for (s, o) in streamed.iter().zip(oracle.iter()) {
        prop_assert_eq!((s.a, s.b), (o.a, o.b));
        prop_assert_eq!(
            s.likelihood.to_bits(),
            o.likelihood.to_bits(),
            "likelihood drifted on ({}, {}): {} vs {}",
            s.a,
            s.b,
            s.likelihood,
            o.likelihood
        );
    }
    // Losslessness of *discovery*: every pair the snapshot keeps was
    // materialized by some insert's delta — never conjured at close.
    for c in &streamed {
        prop_assert!(
            discovered.contains(&(c.a, c.b)),
            "({}, {}) kept at snapshot but never discovered as a delta",
            c.a,
            c.b
        );
    }
    Ok(())
}

proptest! {
    /// Random corpora × pruning floors × seeded arrival orders: the
    /// streamed snapshot equals the batch oracle bit-for-bit, and the
    /// per-insert deltas cover it.
    #[test]
    fn streamed_deltas_equal_bruteforce_oracle(
        kind in 0u64..3,
        n in 15usize..60,
        seed in any::<u64>(),
        floor in 0.0f64..0.8,
        order_seed in any::<u64>(),
    ) {
        let dataset = dataset_for(kind, n, seed);
        let arity = dataset.table.schema().arity();
        let config = MatcherConfig { min_likelihood: floor, ..MatcherConfig::for_arity(arity) };
        let arrivals = shuffled(dataset.len(), order_seed);
        check_stream(&dataset, &config, &arrivals)?;
    }

    /// Floors on the filter's decision boundaries (0, common Jaccard
    /// rationals, 1) stay lossless under shuffled arrivals.
    #[test]
    fn boundary_floors_stay_lossless_streamed(
        kind in 0u64..3,
        n in 15usize..50,
        seed in any::<u64>(),
        floor_idx in 0usize..8,
        order_seed in any::<u64>(),
    ) {
        let floor = [0.0, 0.05, 0.1, 0.125, 0.25, 1.0 / 3.0, 0.5, 1.0][floor_idx];
        let dataset = dataset_for(kind, n, seed);
        let arity = dataset.table.schema().arity();
        let config = MatcherConfig { min_likelihood: floor, ..MatcherConfig::for_arity(arity) };
        let arrivals = shuffled(dataset.len(), order_seed);
        check_stream(&dataset, &config, &arrivals)?;
    }
}

/// Deterministic spot check (fast, runs even with proptest shrunk away):
/// forward and reverse arrivals both match the oracle on a fixed corpus.
#[test]
fn forward_and_reverse_arrivals_match_oracle() {
    let dataset = dataset_for(0, 40, 7);
    let config = MatcherConfig {
        min_likelihood: 0.2,
        ..MatcherConfig::for_arity(dataset.table.schema().arity())
    };
    let forward: Vec<usize> = (0..dataset.len()).collect();
    let mut reverse = forward.clone();
    reverse.reverse();
    check_stream(&dataset, &config, &forward).unwrap();
    check_stream(&dataset, &config, &reverse).unwrap();
}
