//! Cross-crate property tests: the paper's theorems checked end to end on
//! randomized instances.

use crowdjoin::{
    label_sequential, optimal_cost, run_parallel_rounds, sort_pairs, CandidateSet, GroundTruth,
    GroundTruthOracle, Oracle, Pair, Provenance, ScoredPair, SortStrategy, WorldEnumeration,
};
use proptest::prelude::*;

/// Random consistent instance: a clustering over `n` objects and a random
/// candidate subset with likelihoods loosely correlated with the truth
/// (matching pairs drawn toward 1, non-matching toward 0 — like a real
/// matcher).
fn instance() -> impl Strategy<Value = (GroundTruth, CandidateSet)> {
    (4usize..20)
        .prop_flat_map(|n| {
            let entities = proptest::collection::vec(0u32..(n as u32 / 2).max(1), n);
            let edges = proptest::collection::btree_set((0u32..n as u32, 0u32..n as u32), 1..50);
            let noise = proptest::collection::vec(0.0f64..1.0, 50);
            (Just(n), entities, edges, noise)
        })
        .prop_map(|(n, entities, edges, noise)| {
            let truth = GroundTruth::new(entities);
            let mut seen = std::collections::BTreeSet::new();
            let mut pairs = Vec::new();
            for (i, (a, b)) in edges.into_iter().enumerate() {
                if a != b {
                    let p = Pair::new(a, b);
                    if seen.insert(p) {
                        let base = if truth.is_matching(p) { 0.65 } else { 0.35 };
                        let jitter = (noise[i % noise.len()] - 0.5) * 0.6;
                        pairs.push(ScoredPair::new(p, (base + jitter).clamp(0.0, 1.0)));
                    }
                }
            }
            (truth, CandidateSet::new(n, pairs))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1 (both directions we can check): the optimal order achieves
    /// the closed-form cost, and no other order beats it.
    #[test]
    fn theorem1_optimal_cost((truth, cs) in instance(), seed in any::<u64>()) {
        let closed = optimal_cost(&cs, &truth).total();
        let run = |strategy| {
            let order = sort_pairs(&cs, strategy);
            let mut oracle = GroundTruthOracle::new(&truth);
            label_sequential(cs.num_objects(), &order, &mut oracle).num_crowdsourced()
        };
        prop_assert_eq!(run(SortStrategy::Optimal(&truth)), closed);
        for strategy in [
            SortStrategy::ExpectedLikelihood,
            SortStrategy::Random { seed },
            SortStrategy::Worst(&truth),
            SortStrategy::AsGiven,
        ] {
            prop_assert!(run(strategy) >= closed);
        }
    }

    /// Lemma 2 as an executable statement: swapping an adjacent
    /// (non-matching, matching) pair of the order never increases the cost.
    #[test]
    fn lemma2_swap_never_hurts((truth, cs) in instance(), at in any::<prop::sample::Index>()) {
        let order = sort_pairs(&cs, SortStrategy::AsGiven);
        if order.len() < 2 {
            return Ok(());
        }
        let i = at.index(order.len() - 1);
        // Only the (non-matching, matching) → (matching, non-matching) swap
        // is covered by Lemma 2.
        if truth.is_matching(order[i].pair) || !truth.is_matching(order[i + 1].pair) {
            return Ok(());
        }
        let mut swapped = order.clone();
        swapped.swap(i, i + 1);
        let mut o1 = GroundTruthOracle::new(&truth);
        let before = label_sequential(cs.num_objects(), &order, &mut o1).num_crowdsourced();
        let mut o2 = GroundTruthOracle::new(&truth);
        let after = label_sequential(cs.num_objects(), &swapped, &mut o2).num_crowdsourced();
        prop_assert!(after <= before, "swap increased cost: {} -> {}", before, after);
    }

    /// Lemma 3: swapping two adjacent same-label pairs never changes the
    /// cost.
    #[test]
    fn lemma3_same_label_swap_neutral((truth, cs) in instance(), at in any::<prop::sample::Index>()) {
        let order = sort_pairs(&cs, SortStrategy::AsGiven);
        if order.len() < 2 {
            return Ok(());
        }
        let i = at.index(order.len() - 1);
        if truth.is_matching(order[i].pair) != truth.is_matching(order[i + 1].pair) {
            return Ok(());
        }
        let mut swapped = order.clone();
        swapped.swap(i, i + 1);
        let mut o1 = GroundTruthOracle::new(&truth);
        let before = label_sequential(cs.num_objects(), &order, &mut o1).num_crowdsourced();
        let mut o2 = GroundTruthOracle::new(&truth);
        let after = label_sequential(cs.num_objects(), &swapped, &mut o2).num_crowdsourced();
        prop_assert_eq!(before, after);
    }

    /// Deduction soundness at system level: every deduced label equals the
    /// ground truth when answers are correct, under any order.
    #[test]
    fn deduction_soundness((truth, cs) in instance(), seed in any::<u64>()) {
        let order = sort_pairs(&cs, SortStrategy::Random { seed });
        let mut oracle = GroundTruthOracle::new(&truth);
        let result = label_sequential(cs.num_objects(), &order, &mut oracle);
        for lp in result.labeled_pairs() {
            prop_assert_eq!(lp.label, truth.label_of(lp.pair));
            if lp.provenance == Provenance::Deduced {
                // A deduced pair costs nothing: oracle never saw it.
                prop_assert!(result.num_crowdsourced() as u64 == oracle.questions_asked());
            }
        }
    }

    /// Parallel labeling respects the closed-form lower bound and labels
    /// everything correctly.
    #[test]
    fn parallel_lower_bound((truth, cs) in instance()) {
        let closed = optimal_cost(&cs, &truth).total();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let mut oracle = GroundTruthOracle::new(&truth);
        let (result, stats) = run_parallel_rounds(cs.num_objects(), order, &mut oracle);
        prop_assert!(result.num_crowdsourced() >= closed);
        prop_assert_eq!(stats.total_crowdsourced(), result.num_crowdsourced());
        for sp in cs.pairs() {
            prop_assert_eq!(result.label_of(sp.pair), Some(truth.label_of(sp.pair)));
        }
    }

    /// The exact expected cost of the true optimal order (matching first) is
    /// a lower bound over sampled orders, evaluated with the world
    /// enumeration machinery on small instances.
    #[test]
    fn expected_cost_consistency(
        (truth, cs) in instance().prop_filter("small enough to enumerate", |(_, cs)| cs.len() <= 10),
        seed in any::<u64>()
    ) {
        let we = WorldEnumeration::new(cs.num_objects(), cs.pairs()).expect("≤10 pairs");
        // Any sampled order's expected cost is between #pairs' trivial
        // bounds and matches a direct sequential replay in each world.
        let order = sort_pairs(&cs, SortStrategy::Random { seed });
        let cost = we.expected_cost_of_pairs(&order);
        prop_assert!(cost >= 0.0 && cost <= cs.len() as f64 + 1e-9);
        // Replay check on the single ground-truth world: sequential cost of
        // that world is within the min/max over worlds.
        let mut oracle = GroundTruthOracle::new(&truth);
        let replay =
            label_sequential(cs.num_objects(), &order, &mut oracle).num_crowdsourced() as f64;
        let min = we
            .worlds()
            .iter()
            .map(|w| {
                let labels: Vec<_> = cs
                    .pairs()
                    .iter()
                    .enumerate()
                    .map(|(i, sp)| (sp.pair, w.labels[i]))
                    .collect();
                let mut o = crowdjoin::FixedOracle::new(labels);
                label_sequential(cs.num_objects(), &order, &mut o).num_crowdsourced()
            })
            .min()
            .unwrap_or(0) as f64;
        prop_assert!(replay >= min);
    }
}
