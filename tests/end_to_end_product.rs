//! End-to-end integration: Abt-Buy-style cross join through the whole
//! stack. Cross joins only consider pairs spanning the two tables, and
//! transitive savings come from the ≥3-record clusters.

use crowdjoin::matcher::MatcherConfig;
use crowdjoin::records::{generate_product, ClusterSpec, Dataset, PerturbConfig, ProductGenConfig};
use crowdjoin::{
    ground_truth_of, to_candidate_set, GroundTruthOracle, Pair, QualityMetrics, SortStrategy,
};

fn dataset() -> Dataset {
    generate_product(&ProductGenConfig {
        table_a: 250,
        table_b: 260,
        clusters: ClusterSpec::Explicit(vec![(2, 140), (3, 40), (4, 10), (5, 3)]),
        perturb: PerturbConfig::heavy(),
        seed: 31337,
    })
}

fn matcher() -> MatcherConfig {
    MatcherConfig { field_weights: vec![1.0, 0.25], ..MatcherConfig::for_arity(2) }
}

#[test]
fn candidates_are_cross_table_only() {
    let ds = dataset();
    let raw = crowdjoin::matcher::generate_candidates(&ds, &matcher());
    assert!(!raw.is_empty());
    for c in &raw {
        assert!(
            ds.is_joinable(c.a as usize, c.b as usize),
            "same-side candidate ({}, {})",
            c.a,
            c.b
        );
    }
}

#[test]
fn labeling_recovers_cross_matches() {
    let ds = dataset();
    let raw = crowdjoin::matcher::generate_candidates(&ds, &matcher());
    let candidates = to_candidate_set(&ds, &raw).above_threshold(0.2);
    let truth = ground_truth_of(&ds);
    let task = crowdjoin::LabelingTask::new(candidates);
    let mut crowd = GroundTruthOracle::new(&truth);
    let result = task.run_sequential(SortStrategy::ExpectedLikelihood, &mut crowd);
    let q = QualityMetrics::of_result(&result, &truth);
    assert_eq!(q.precision(), 1.0);
    assert_eq!(q.recall(), 1.0);

    // The candidate set must capture a good share of the true cross-table
    // matches (matcher recall at the machine stage).
    let split = ds.split.unwrap();
    let mut true_cross = 0usize;
    let mut found = 0usize;
    for a in 0..split {
        for b in split..ds.len() {
            if ds.is_true_match(a, b) {
                true_cross += 1;
                let p = Pair::new(a as u32, b as u32);
                if result.label_of(p) == Some(crowdjoin::Label::Matching) {
                    found += 1;
                }
            }
        }
    }
    assert!(
        found * 10 >= true_cross * 5,
        "candidate set captured only {found}/{true_cross} true cross matches"
    );
}

#[test]
fn savings_positive_but_modest_on_near_one_to_one_data() {
    let ds = dataset();
    let raw = crowdjoin::matcher::generate_candidates(&ds, &matcher());
    let candidates = to_candidate_set(&ds, &raw).above_threshold(0.15);
    let truth = ground_truth_of(&ds);
    let task = crowdjoin::LabelingTask::new(candidates);
    let mut crowd = GroundTruthOracle::new(&truth);
    let result = task.run_sequential(SortStrategy::Optimal(&truth), &mut crowd);
    let savings = result.savings_ratio();
    assert!(savings > 0.0, "some ≥3 clusters must produce savings");
    assert!(
        savings < 0.6,
        "near-1:1 data cannot save like heavy-tail data, got {:.1}%",
        savings * 100.0
    );
}

#[test]
fn pure_one_to_one_clusters_admit_no_deduction() {
    // The structural fact behind Figure 11(b): with only size-2 clusters in
    // a cross join, every candidate must be crowdsourced.
    let ds = generate_product(&ProductGenConfig {
        table_a: 60,
        table_b: 60,
        clusters: ClusterSpec::Explicit(vec![(2, 60)]),
        perturb: PerturbConfig::light(),
        seed: 5,
    });
    let truth = ground_truth_of(&ds);
    let raw = crowdjoin::matcher::generate_candidates(&ds, &matcher());
    let candidates = to_candidate_set(&ds, &raw).above_threshold(0.2);
    // Keep only *matching* candidates: between 1:1 clusters any non-matching
    // near-pair could still be deduced through a matching path, so restrict
    // the claim to the matching core, where no deduction is possible.
    let matching_only: Vec<_> =
        candidates.pairs().iter().filter(|sp| truth.is_matching(sp.pair)).copied().collect();
    let n = matching_only.len();
    assert!(n > 20, "need a meaningful number of matching candidates, got {n}");
    let cs = crowdjoin::CandidateSet::new(candidates.num_objects(), matching_only);
    let task = crowdjoin::LabelingTask::new(cs);
    let mut crowd = GroundTruthOracle::new(&truth);
    let result = task.run_sequential(SortStrategy::Optimal(&truth), &mut crowd);
    assert_eq!(result.num_deduced(), 0, "1:1 cross-join matches are never deducible");
    assert_eq!(result.num_crowdsourced(), n);
}
