//! Crash-safety tests for the answer journal: a multi-round AMT-platform
//! job killed after *every* round boundary (and in fact after every record,
//! and at arbitrary byte offsets) must resume to labels, money, and
//! per-shard stats **bit-identical** to an uninterrupted run, never
//! re-asking (re-paying) a journaled question — the crashed run's answers
//! plus the resumed run's new answers always total exactly the
//! uninterrupted run's.

use crowdjoin::sim::PlatformConfig;
use crowdjoin::wal::{self, Record, WalError};
use crowdjoin::{
    resume_sharded_on_platform, run_sharded_on_platform, Engine, EngineConfig, EngineReport,
    GroundTruth, OrderingMode, Pair, ScoredPair,
};
use std::path::{Path, PathBuf};

/// 40 disjoint triangle components (120 objects). Even components are a
/// true 3-cluster, odd components all-distinct — the refuted deduction in
/// odd components forces a second publish round, so every shard crosses at
/// least one journaled round barrier.
fn workload() -> (usize, Vec<ScoredPair>, GroundTruth) {
    let num_components = 40;
    let num_objects = 3 * num_components;
    let mut entity: Vec<u32> = (0..num_objects as u32).collect();
    let mut pairs = Vec::with_capacity(3 * num_components);
    for c in 0..num_components {
        let base = (3 * c) as u32;
        if c % 2 == 0 {
            entity[base as usize + 1] = base;
            entity[base as usize + 2] = base;
        }
        let l = 0.95 - (c % 9) as f64 * 0.03;
        pairs.push(ScoredPair::new(Pair::new(base, base + 1), l));
        pairs.push(ScoredPair::new(Pair::new(base + 1, base + 2), l - 0.01));
        pairs.push(ScoredPair::new(Pair::new(base, base + 2), l - 0.02));
    }
    (num_objects, pairs, GroundTruth::new(entity))
}

fn engine_config(reshard: bool) -> EngineConfig {
    EngineConfig { num_shards: 6, num_threads: 2, seed: 11, reshard, ..EngineConfig::default() }
}

fn platform_config() -> PlatformConfig {
    // Noisy workers: labels depend on worker RNG streams, so bit-identical
    // resume is only possible if the journal machinery reconstructs the
    // platforms exactly. The crowd is sized so every shard's even split
    // keeps at least `assignments_per_hit` qualified workers.
    PlatformConfig { num_workers: 120, ..PlatformConfig::amt_like(29) }
}

/// Unique scratch path for one test.
fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("crowdjoin-resume-{}-{name}", std::process::id()))
}

/// Bit-identical comparison: merged labels and provenance on every pair,
/// money, completion, and every per-shard report including platform stats.
fn assert_reports_identical(a: &EngineReport, b: &EngineReport, order: &[ScoredPair], ctx: &str) {
    assert_eq!(a.result.num_labeled(), b.result.num_labeled(), "{ctx}: labeled");
    assert_eq!(a.result.num_crowdsourced(), b.result.num_crowdsourced(), "{ctx}: crowdsourced");
    assert_eq!(a.result.num_conflicts(), b.result.num_conflicts(), "{ctx}: conflicts");
    assert_eq!(a.total_cost_cents, b.total_cost_cents, "{ctx}: money");
    assert_eq!(a.completion, b.completion, "{ctx}: completion");
    assert_eq!(a.reshard_generations, b.reshard_generations, "{ctx}: generations");
    assert_eq!(a.num_crowd_answers(), b.num_crowd_answers(), "{ctx}: crowd answers");
    for sp in order {
        assert_eq!(a.result.label_of(sp.pair), b.result.label_of(sp.pair), "{ctx}: {}", sp.pair);
        assert_eq!(a.result.provenance_of(sp.pair), b.result.provenance_of(sp.pair), "{ctx}");
    }
    assert_eq!(a.shards.len(), b.shards.len(), "{ctx}: shard count");
    for (x, y) in a.shards.iter().zip(&b.shards) {
        assert_eq!(x.shard, y.shard, "{ctx}");
        assert_eq!(x.stats, y.stats, "{ctx}: shard {} platform stats", x.shard);
        assert_eq!(x.completion, y.completion, "{ctx}: shard {} completion", x.shard);
        assert_eq!(x.publish_rounds, y.publish_rounds, "{ctx}: shard {} rounds", x.shard);
    }
}

/// The journals of two runs of the same job must describe the same
/// history. Raw bytes can interleave shards differently across worker
/// threads, so compare the per-shard record streams.
fn assert_journals_equivalent(a: &Path, b: &Path, ctx: &str) {
    let ca = wal::read_journal(a).expect("journal a");
    let cb = wal::read_journal(b).expect("journal b");
    assert_eq!(ca.header, cb.header, "{ctx}: headers");
    let pa = wal::partition_replay(&ca.records);
    let pb = wal::partition_replay(&cb.records);
    assert_eq!(pa.shards, pb.shards, "{ctx}: per-shard record streams");
    assert_eq!(pa.generations, pb.generations, "{ctx}: generation barriers");
    assert_eq!(pa.complete, pb.complete, "{ctx}: completion records");
}

/// Runs the job uninterrupted, once plain and once journaled, returning
/// (plain report, journaled report, journal path).
fn run_journaled(name: &str, reshard: bool) -> (EngineReport, EngineReport, PathBuf) {
    let (num_objects, order, truth) = workload();
    let platform = platform_config();
    let plain =
        run_sharded_on_platform(num_objects, &order, &truth, &platform, &engine_config(reshard));

    let path = temp_path(name);
    let _ = std::fs::remove_file(&path);
    let config = EngineConfig { journal: Some(path.clone()), ..engine_config(reshard) };
    let journaled =
        Engine::new(num_objects, &order, &truth, &platform, config).run().expect("journaled run");
    (plain, journaled, path)
}

#[test]
fn journaling_does_not_perturb_the_run() {
    let (num_objects, order, _) = workload();
    let (plain, journaled, path) = run_journaled("perturb.wal", false);
    assert_reports_identical(&plain, &journaled, &order, "journaled vs plain");
    assert_eq!(journaled.num_replayed_answers(), 0, "fresh run replays nothing");

    let contents = wal::read_journal(&path).expect("journal readable");
    assert_eq!(contents.torn_bytes, 0);
    assert_eq!(contents.header.num_objects as usize, num_objects);
    let plan = wal::partition_replay(&contents.records);
    assert_eq!(plan.num_answers(), journaled.num_crowd_answers(), "one record per paid answer");
    let complete = plan.complete.expect("finished job has a completion record");
    assert_eq!(complete.answers as usize, journaled.num_crowd_answers());
    assert_eq!(complete.cost_cents, journaled.total_cost_cents);
    std::fs::remove_file(&path).expect("cleanup");
}

/// The headline acceptance test: kill the job after **every** journal
/// record — which includes every round barrier of every shard — and resume
/// each time. Labels, money, and per-shard stats must be bit-identical to
/// the uninterrupted run, and `journaled answers + newly asked answers`
/// must equal the uninterrupted run's crowdsourced-question count exactly:
/// no journaled question is ever re-asked.
#[test]
fn kill_at_every_record_resumes_bit_identically() {
    let (num_objects, order, truth) = workload();
    let platform = platform_config();
    let (_, full, path) = run_journaled("killer.wal", false);
    let contents = wal::read_journal(&path).expect("full journal");

    // Cut points: after the header only (offset of record 0), after every
    // record, and the complete file.
    let mut cuts: Vec<u64> = contents.offsets.clone();
    cuts.push(contents.valid_len);
    let cut_path = temp_path("killer-cut.wal");
    let bytes = std::fs::read(&path).expect("journal bytes");

    for (i, &cut) in cuts.iter().enumerate() {
        std::fs::write(&cut_path, &bytes[..cut as usize]).expect("write cut");
        let paid_before_crash =
            wal::partition_replay(&contents.records[..i.min(contents.records.len())]).num_answers();

        let resumed = resume_sharded_on_platform(
            num_objects,
            &order,
            &truth,
            &platform,
            &engine_config(false),
            &cut_path,
        )
        .unwrap_or_else(|e| panic!("resume at cut {i} failed: {e}"));

        assert_reports_identical(&full, &resumed, &order, &format!("cut {i}"));
        assert_eq!(
            resumed.num_replayed_answers(),
            paid_before_crash,
            "cut {i}: every journaled answer must be replayed, none re-asked"
        );
        assert_eq!(
            paid_before_crash + resumed.num_new_answers(),
            full.num_crowd_answers(),
            "cut {i}: crashed + resumed question count must equal the uninterrupted run's"
        );
        // The resumed journal must describe the same history as the
        // uninterrupted journal — ready for another crash and resume.
        assert_journals_equivalent(&path, &cut_path, &format!("cut {i}"));
    }
    std::fs::remove_file(&path).expect("cleanup");
    std::fs::remove_file(&cut_path).expect("cleanup");
}

/// Crashes do not respect record boundaries: resume must also work from
/// arbitrary byte-level truncations (torn tails), dropping only the torn
/// record.
#[test]
fn resume_from_torn_tails() {
    let (num_objects, order, truth) = workload();
    let platform = platform_config();
    let (_, full, path) = run_journaled("torn.wal", false);
    let bytes = std::fs::read(&path).expect("journal bytes");
    let cut_path = temp_path("torn-cut.wal");

    // A spread of raw byte offsets across the file, none on a boundary.
    for frac in [0.21, 0.433, 0.62, 0.871, 0.995] {
        let cut = ((bytes.len() as f64) * frac) as usize;
        std::fs::write(&cut_path, &bytes[..cut]).expect("write cut");
        let resumed = resume_sharded_on_platform(
            num_objects,
            &order,
            &truth,
            &platform,
            &engine_config(false),
            &cut_path,
        )
        .unwrap_or_else(|e| panic!("resume at byte {cut} failed: {e}"));
        assert_reports_identical(&full, &resumed, &order, &format!("byte cut {cut}"));
        assert_journals_equivalent(&path, &cut_path, &format!("byte cut {cut}"));
    }
    std::fs::remove_file(&path).expect("cleanup");
    std::fs::remove_file(&cut_path).expect("cleanup");
}

/// Re-sharding runs journal generation barriers too; killing one mid-flight
/// (including between generations) must resume bit-identically.
#[test]
fn reshard_runs_resume_bit_identically() {
    let (num_objects, order, truth) = workload();
    let platform = platform_config();
    let (plain, full, path) = run_journaled("reshard.wal", true);
    assert_reports_identical(&plain, &full, &order, "journaled vs plain (reshard)");
    let contents = wal::read_journal(&path).expect("full journal");
    assert!(
        wal::partition_replay(&contents.records).generations.front().is_some(),
        "workload must actually re-shard for this test to bite"
    );

    let bytes = std::fs::read(&path).expect("journal bytes");
    let cut_path = temp_path("reshard-cut.wal");
    // Cut right after each generation record, plus a mid-generation record.
    let mut cuts = Vec::new();
    for (i, r) in contents.records.iter().enumerate() {
        if matches!(r, Record::Generation(_)) {
            let end = contents.offsets.get(i + 1).copied().unwrap_or(contents.valid_len);
            cuts.push(end);
            cuts.push(contents.offsets[i]); // just *before* the barrier too
        }
    }
    cuts.push(contents.offsets[contents.offsets.len() / 2]);
    for cut in cuts {
        std::fs::write(&cut_path, &bytes[..cut as usize]).expect("write cut");
        let resumed = resume_sharded_on_platform(
            num_objects,
            &order,
            &truth,
            &platform,
            &engine_config(true),
            &cut_path,
        )
        .unwrap_or_else(|e| panic!("reshard resume at byte {cut} failed: {e}"));
        assert_reports_identical(&full, &resumed, &order, &format!("reshard cut {cut}"));
        assert_journals_equivalent(&path, &cut_path, &format!("reshard cut {cut}"));
    }
    std::fs::remove_file(&path).expect("cleanup");
    std::fs::remove_file(&cut_path).expect("cleanup");
}

/// Resuming a finished job replays everything, asks nothing, and leaves
/// the journal byte-identical.
#[test]
fn resuming_a_finished_job_asks_nothing() {
    let (num_objects, order, truth) = workload();
    let platform = platform_config();
    let (_, full, path) = run_journaled("finished.wal", false);
    let before = std::fs::read(&path).expect("journal bytes");

    let resumed = resume_sharded_on_platform(
        num_objects,
        &order,
        &truth,
        &platform,
        &engine_config(false),
        &path,
    )
    .expect("resume of finished job");
    assert_reports_identical(&full, &resumed, &order, "finished resume");
    assert_eq!(resumed.num_new_answers(), 0, "a finished job asks nothing new");
    assert_eq!(resumed.num_replayed_answers(), full.num_crowd_answers());
    assert_eq!(std::fs::read(&path).expect("journal bytes"), before, "journal untouched");
    std::fs::remove_file(&path).expect("cleanup");
}

/// A journal must only resume the job that wrote it: different seeds,
/// platform, flags, or inputs are rejected at the header check, before a
/// single answer is replayed.
#[test]
fn resume_rejects_a_different_job() {
    let (num_objects, order, truth) = workload();
    let platform = platform_config();
    let (_, _, path) = run_journaled("mismatch.wal", false);

    let resume = |order: &[ScoredPair],
                  truth: &GroundTruth,
                  platform: &PlatformConfig,
                  config: &EngineConfig| {
        resume_sharded_on_platform(num_objects, order, truth, platform, config, &path)
    };
    let base = engine_config(false);

    let cases: Vec<(&str, Result<EngineReport, WalError>)> = vec![
        (
            "engine seed",
            resume(&order, &truth, &platform, &EngineConfig { seed: 99, ..base.clone() }),
        ),
        ("platform seed", resume(&order, &truth, &PlatformConfig::amt_like(30), &base)),
        ("platform preset", resume(&order, &truth, &PlatformConfig::perfect_workers(29), &base)),
        (
            "shard count",
            resume(&order, &truth, &platform, &EngineConfig { num_shards: 5, ..base.clone() }),
        ),
        (
            "reshard flag",
            resume(&order, &truth, &platform, &EngineConfig { reshard: true, ..base.clone() }),
        ),
        ("labeling order", resume(&order[1..], &truth, &platform, &base)),
        ("ground truth", resume(&order, &GroundTruth::all_distinct(num_objects), &platform, &base)),
    ];
    for (what, result) in cases {
        match result {
            Err(WalError::HeaderMismatch { .. }) => {}
            Ok(_) => panic!("resume with different {what} must be rejected"),
            Err(other) => panic!("resume with different {what}: wrong error {other}"),
        }
    }

    // The question-ordering policy decides which pairs get crowdsourced,
    // so a resume under a different `--order` is a different job; the
    // refusal must say so by name, because the fix (re-pass the original
    // --order) is otherwise invisible to the operator.
    for mode in [OrderingMode::Exact, OrderingMode::Online] {
        match resume(&order, &truth, &platform, &EngineConfig { order: mode, ..base.clone() }) {
            Err(e @ WalError::HeaderMismatch { .. }) => assert!(
                e.to_string().contains("ordering"),
                "the {mode} mismatch must name the ordering field: {e}"
            ),
            Ok(_) => panic!("resume with --order {mode} over a likelihood journal must be refused"),
            Err(other) => panic!("resume with --order {mode}: wrong error {other}"),
        }
    }
    std::fs::remove_file(&path).expect("cleanup");
}

// ===== Streaming: the two-file scheme (`FILE.stream` ingest frames + =====
// ===== `FILE` answer records), killed at both phases.                =====

use crowdjoin::matcher::{generate_candidates, MatcherConfig, ScoredCandidate};
use crowdjoin::records::{generate_paper, ClusterSpec, Dataset, PaperGenConfig, PerturbConfig};
use crowdjoin::{sort_pairs, to_candidate_set, SortStrategy, StreamJob};

fn stream_dataset() -> Dataset {
    generate_paper(&PaperGenConfig {
        num_records: 60,
        clusters: ClusterSpec::Explicit(vec![(4, 5), (3, 6), (2, 6)]),
        perturb: PerturbConfig::light(),
        sibling_probability: 0.1,
        seed: 31,
    })
}

fn stream_matcher_config() -> MatcherConfig {
    MatcherConfig { min_likelihood: 0.2, ..MatcherConfig::for_arity(5) }
}

/// Ingest-batch size for the streaming tests: one journal frame per batch.
const STREAM_BATCH: usize = 5;

/// Ingests records `from..to` of `ds` (external id = record index) in
/// [`STREAM_BATCH`]-record batches.
fn ingest_range(job: &mut StreamJob, ds: &Dataset, from: usize, to: usize) {
    let mut i = from;
    while i < to {
        let hi = (i + STREAM_BATCH).min(to);
        let batch: Vec<(u32, crowdjoin::records::Record)> =
            (i..hi).map(|r| (r as u32, ds.table.record(r).clone())).collect();
        job.ingest(&batch).expect("journaled ingest");
        i = hi;
    }
}

fn stream_order(ds: &Dataset, candidates: &[ScoredCandidate]) -> Vec<ScoredPair> {
    let set = to_candidate_set(ds, candidates).above_threshold(0.3);
    sort_pairs(&set, SortStrategy::ExpectedLikelihood)
}

fn assert_candidates_identical(streamed: &[ScoredCandidate], batch: &[ScoredCandidate], ctx: &str) {
    assert_eq!(streamed.len(), batch.len(), "{ctx}: candidate count");
    for (s, b) in streamed.iter().zip(batch) {
        assert_eq!((s.a, s.b), (b.a, b.b), "{ctx}");
        assert_eq!(
            s.likelihood.to_bits(),
            b.likelihood.to_bits(),
            "{ctx}: likelihood bits on ({}, {})",
            s.a,
            s.b
        );
    }
}

/// The streaming acceptance test: kill the job **twice** — first after N
/// ingest frames (only `FILE.stream` exists), then after M crowd answers
/// (cutting `FILE`) — and resume each time. The stream resume replays the
/// Ingest frames and re-derives the identical candidate order; the engine
/// resume replays the Answer records; the final report is bit-identical to
/// an uninterrupted run and no journaled question is ever re-asked.
#[test]
fn stream_killed_mid_ingest_and_mid_answers_resumes_bit_identically() {
    let ds = stream_dataset();
    let truth = GroundTruth::new(ds.entity_of.clone());
    let platform = platform_config();
    let batch = generate_candidates(&ds, &stream_matcher_config());
    let order = stream_order(&ds, &batch);
    assert!(order.len() >= 20, "workload must have enough pairs to matter");

    // Uninterrupted journaled reference run.
    let full_path = temp_path("stream-full.wal");
    let _ = std::fs::remove_file(&full_path);
    let config = EngineConfig { journal: Some(full_path.clone()), ..engine_config(false) };
    let full =
        Engine::new(ds.len(), &order, &truth, &platform, config).run().expect("reference run");

    for kill_after in [1usize, 6, 11] {
        let survived = (kill_after * STREAM_BATCH).min(ds.len());

        // Kill N°1: mid-stream, after `kill_after` durable ingest frames.
        let spath = temp_path(&format!("stream-{kill_after}.wal.stream"));
        let _ = std::fs::remove_file(&spath);
        let schema = ds.table.schema().clone();
        let mut job = StreamJob::with_journal(schema.clone(), stream_matcher_config(), 11, &spath)
            .expect("stream journal");
        ingest_range(&mut job, &ds, 0, survived);
        drop(job);

        // Resume the stream: Ingest frames replay, the rest re-ingests,
        // and the close is bit-identical to batch candidates.
        let (mut job, replayed) =
            StreamJob::resume(schema, stream_matcher_config(), 11, &spath).expect("stream resume");
        assert_eq!(replayed, survived, "every durable ingest frame must replay");
        assert!(!job.is_sealed());
        ingest_range(&mut job, &ds, replayed, ds.len());
        let (_, streamed) = job.close().expect("close");
        assert_candidates_identical(&streamed, &batch, &format!("stream kill {kill_after}"));

        // The engine phase over the streamed order, journaled.
        let sorder = stream_order(&ds, &streamed);
        let jpath = temp_path(&format!("stream-{kill_after}.wal"));
        let _ = std::fs::remove_file(&jpath);
        let config = EngineConfig { journal: Some(jpath.clone()), ..engine_config(false) };
        let run =
            Engine::new(ds.len(), &sorder, &truth, &platform, config).run().expect("engine run");
        assert_reports_identical(&full, &run, &order, &format!("stream kill {kill_after}"));

        // Kill N°2: after M answers — cut the answer journal at record
        // boundaries and resume; bit-identical, never re-asking.
        let contents = wal::read_journal(&jpath).expect("answer journal");
        let bytes = std::fs::read(&jpath).expect("journal bytes");
        let cut_path = temp_path(&format!("stream-{kill_after}-cut.wal"));
        for frac in [0.25, 0.6, 0.9] {
            let idx = ((contents.offsets.len() - 1) as f64 * frac) as usize;
            std::fs::write(&cut_path, &bytes[..contents.offsets[idx] as usize]).expect("cut");
            let paid_before = wal::partition_replay(&contents.records[..idx]).num_answers();
            let resumed = resume_sharded_on_platform(
                ds.len(),
                &sorder,
                &truth,
                &platform,
                &engine_config(false),
                &cut_path,
            )
            .unwrap_or_else(|e| panic!("resume after {paid_before} answers failed: {e}"));
            let ctx = format!("stream kill {kill_after}, answer cut {idx}");
            assert_reports_identical(&full, &resumed, &order, &ctx);
            assert_eq!(resumed.num_replayed_answers(), paid_before, "{ctx}: replay count");
            assert_eq!(
                paid_before + resumed.num_new_answers(),
                full.num_crowd_answers(),
                "{ctx}: crashed + resumed answers must equal the uninterrupted run's"
            );
        }
        std::fs::remove_file(&spath).expect("cleanup");
        std::fs::remove_file(&jpath).expect("cleanup");
        let _ = std::fs::remove_file(&cut_path);
    }
    std::fs::remove_file(&full_path).expect("cleanup");
}

/// Crashes do not respect ingest-frame boundaries either: a stream journal
/// truncated at arbitrary byte offsets loses only the torn frame — the
/// resume replays the durable prefix, the lost records re-ingest, and the
/// close stays bit-identical to batch.
#[test]
fn torn_stream_tail_resumes_to_identical_close() {
    let ds = stream_dataset();
    let batch = generate_candidates(&ds, &stream_matcher_config());
    let schema = ds.table.schema().clone();
    let spath = temp_path("stream-torn.wal.stream");
    let _ = std::fs::remove_file(&spath);
    let mut job = StreamJob::with_journal(schema.clone(), stream_matcher_config(), 11, &spath)
        .expect("stream journal");
    ingest_range(&mut job, &ds, 0, ds.len());
    drop(job);
    let bytes = std::fs::read(&spath).expect("stream journal bytes");

    for frac in [0.31, 0.55, 0.78, 0.97] {
        let cut = ((bytes.len() as f64) * frac) as usize;
        std::fs::write(&spath, &bytes[..cut]).expect("write torn journal");
        let (mut job, replayed) =
            StreamJob::resume(schema.clone(), stream_matcher_config(), 11, &spath)
                .unwrap_or_else(|e| panic!("torn resume at byte {cut} failed: {e}"));
        assert!(replayed <= ds.len());
        assert!(replayed.is_multiple_of(STREAM_BATCH), "only whole frames replay");
        ingest_range(&mut job, &ds, replayed, ds.len());
        let (_, streamed) = job.close().expect("close");
        assert_candidates_identical(&streamed, &batch, &format!("torn byte cut {cut}"));
    }
    std::fs::remove_file(&spath).expect("cleanup");
}

/// Starting a *new* journal over an existing non-empty file is refused —
/// it may hold paid-for answers.
#[test]
fn new_journal_refuses_to_overwrite() {
    let (num_objects, order, truth) = workload();
    let platform = platform_config();
    let (_, _, path) = run_journaled("overwrite.wal", false);

    let config = EngineConfig { journal: Some(path.clone()), ..engine_config(false) };
    match Engine::new(num_objects, &order, &truth, &platform, config).run() {
        Err(WalError::AlreadyExists(_)) => {}
        Ok(_) => panic!("running over an existing journal must be refused"),
        Err(other) => panic!("wrong error: {other}"),
    }
    std::fs::remove_file(&path).expect("cleanup");
}
