//! End-to-end tests of the spool-directory crowd backend: the engine
//! publishes HITs as JSON files, a scripted answerer thread plays the
//! external crowd, and the whole job — including kill + `--resume` — runs
//! through the same event loop as the simulator path.

use crowdjoin::backend_spool::{answer_pending, pending_hits, SpoolConfig, SpoolFactory};
use crowdjoin::sim::PlatformConfig;
use crowdjoin::{
    sort_pairs, CandidateSet, Engine, EngineConfig, EngineReport, GroundTruth, Label, Pair,
    Provenance, ScoredPair,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// The paper's running example: two entity clusters over six objects,
/// eight candidate pairs.
fn running_example() -> (CandidateSet, GroundTruth) {
    let truth = GroundTruth::from_clusters(6, &[vec![0, 1, 2], vec![3, 4]]);
    let pairs = vec![
        ScoredPair::new(Pair::new(0, 1), 0.95),
        ScoredPair::new(Pair::new(1, 2), 0.90),
        ScoredPair::new(Pair::new(0, 5), 0.85),
        ScoredPair::new(Pair::new(0, 2), 0.80),
        ScoredPair::new(Pair::new(3, 4), 0.75),
        ScoredPair::new(Pair::new(3, 5), 0.70),
        ScoredPair::new(Pair::new(1, 3), 0.65),
        ScoredPair::new(Pair::new(4, 5), 0.60),
    ];
    (CandidateSet::new(6, pairs), truth)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("crowdjoin-spool-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Small HITs and a fast poll so multi-round jobs finish in milliseconds.
fn platform_cfg() -> PlatformConfig {
    PlatformConfig { batch_size: 2, ..PlatformConfig::perfect_workers(7) }
}

fn spool_cfg(dir: &Path) -> SpoolConfig {
    SpoolConfig { poll_interval: crowdjoin::sim::SimDuration(5), ..SpoolConfig::new(dir) }
}

/// Runs `job` while a scripted answerer thread echoes each HIT's `truth`
/// field, recording every pair it answers. Returns the report and the
/// answered pairs.
fn run_with_scripted_answerer(
    dir: &Path,
    job: impl FnOnce() -> EngineReport,
) -> (EngineReport, Vec<Pair>) {
    let done = Arc::new(AtomicBool::new(false));
    let answered: Arc<Mutex<Vec<Pair>>> = Arc::new(Mutex::new(Vec::new()));
    let answerer = {
        let dir = dir.to_path_buf();
        let done = Arc::clone(&done);
        let answered = Arc::clone(&answered);
        std::thread::spawn(move || {
            while !done.load(Ordering::Relaxed) {
                answer_pending(&dir, |q| {
                    answered.lock().unwrap().push(Pair::new(q.a, q.b));
                    q.truth
                })
                .expect("answerer scan");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        })
    };
    let report = job();
    done.store(true, Ordering::Relaxed);
    answerer.join().expect("answerer thread");
    let answered = Arc::try_unwrap(answered).expect("sole owner").into_inner().unwrap();
    (report, answered)
}

#[test]
fn spool_job_completes_end_to_end() {
    let (cs, truth) = running_example();
    let order = sort_pairs(&cs, crowdjoin::SortStrategy::ExpectedLikelihood);
    let dir = temp_dir("e2e");
    let factory = SpoolFactory::new(spool_cfg(&dir)).expect("factory");
    let platform = platform_cfg();
    let config = EngineConfig { num_shards: 2, ..EngineConfig::default() };

    let engine = Engine::new(cs.num_objects(), &order, &truth, &platform, config);
    let (report, answered) =
        run_with_scripted_answerer(&dir, || engine.run_with_backend(&factory).expect("run"));

    // Every pair labeled correctly, with real transitive savings.
    assert_eq!(report.result.num_labeled(), cs.len());
    for sp in cs.pairs() {
        assert_eq!(report.result.label_of(sp.pair), Some(truth.label_of(sp.pair)));
    }
    assert!(report.num_deduced() > 0, "transitivity must save questions");
    // The external answerer answered exactly the crowdsourced pairs.
    assert_eq!(answered.len(), report.num_crowdsourced());
    for pair in &answered {
        assert_eq!(report.result.provenance_of(*pair), Some(Provenance::Crowdsourced));
    }
    // Money: one assignment per answered HIT at the configured price.
    let hits: usize =
        report.shards.iter().filter_map(|s| s.stats.as_ref()).map(|st| st.hits_published).sum();
    assert_eq!(
        report.total_cost_cents,
        hits as u64 * u64::from(platform.price_per_assignment_cents)
    );
    assert!(report.completion > crowdjoin::sim::VirtualTime::ZERO, "wall clock advanced");
    assert_eq!(pending_hits(&dir).expect("scan").len(), 0, "nothing left unanswered");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Kill + resume at every journal record boundary: the resumed run must
/// never re-ask a journaled question and must converge to the same labels.
#[test]
fn spool_resume_never_reasks_journaled_questions() {
    let (cs, truth) = running_example();
    let order = sort_pairs(&cs, crowdjoin::SortStrategy::ExpectedLikelihood);
    let dir = temp_dir("resume");
    let platform = platform_cfg();
    let config = |journal: &Path| EngineConfig {
        num_shards: 2,
        journal: Some(journal.to_path_buf()),
        ..EngineConfig::default()
    };

    // The uninterrupted journaled reference run.
    let full_journal = dir.join("full.wal");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let factory = SpoolFactory::new(spool_cfg(&dir)).expect("factory");
    let engine = Engine::new(cs.num_objects(), &order, &truth, &platform, config(&full_journal));
    let (full_report, _) =
        run_with_scripted_answerer(&dir, || engine.run_with_backend(&factory).expect("run"));
    let contents = crowdjoin::wal::read_journal(&full_journal).expect("read journal");
    assert!(contents.records.len() > 3, "need a real history to cut");

    // Cut the journal at every record boundary (plus the finished state)
    // and resume each prefix.
    let mut cuts: Vec<u64> = contents.offsets.clone();
    cuts.push(contents.valid_len);
    let bytes = std::fs::read(&full_journal).expect("journal bytes");
    for (i, &cut) in cuts.iter().enumerate() {
        let crash_journal = dir.join(format!("crash-{i}.wal"));
        std::fs::write(&crash_journal, &bytes[..cut as usize]).expect("truncate");

        // Pairs the journal prefix already paid for.
        let prefix = crowdjoin::wal::read_journal(&crash_journal).expect("prefix");
        let journaled: Vec<Pair> = prefix
            .records
            .iter()
            .filter_map(|r| match r {
                crowdjoin::wal::Record::Answer(a) => Some(Pair::new(a.a, a.b)),
                _ => None,
            })
            .collect();

        let factory = SpoolFactory::new(spool_cfg(&dir)).expect("factory");
        let engine =
            Engine::new(cs.num_objects(), &order, &truth, &platform, config(&crash_journal));
        let (report, answered) = run_with_scripted_answerer(&dir, || {
            engine.resume_with_backend(&crash_journal, &factory).expect("resume")
        });

        // No journaled question was re-asked.
        for pair in &answered {
            assert!(
                !journaled.contains(pair),
                "cut {i}: resumed run re-asked journaled pair {pair}"
            );
        }
        // The ledger partitions exactly: journaled + newly asked = all.
        assert_eq!(report.num_replayed_answers(), journaled.len(), "cut {i}");
        assert_eq!(report.num_new_answers(), answered.len(), "cut {i}");
        assert_eq!(
            report.num_crowd_answers(),
            journaled.len() + answered.len(),
            "cut {i}: every paid answer counted exactly once"
        );

        // Same labels as the uninterrupted run, pair for pair.
        assert_eq!(report.result.num_labeled(), cs.len(), "cut {i}");
        for sp in cs.pairs() {
            assert_eq!(
                report.result.label_of(sp.pair),
                full_report.result.label_of(sp.pair),
                "cut {i}: label of {} diverged",
                sp.pair
            );
        }
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Resuming the journal of a *finished* spool job replays everything, asks
/// the external crowd nothing, and reproduces the labels.
#[test]
fn finished_spool_journal_resumes_without_asking() {
    let (cs, truth) = running_example();
    let order = sort_pairs(&cs, crowdjoin::SortStrategy::ExpectedLikelihood);
    let dir = temp_dir("finished");
    let platform = platform_cfg();
    let journal = dir.join("job.wal");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let config =
        EngineConfig { num_shards: 2, journal: Some(journal.clone()), ..EngineConfig::default() };

    let factory = SpoolFactory::new(spool_cfg(&dir)).expect("factory");
    let engine = Engine::new(cs.num_objects(), &order, &truth, &platform, config);
    let (full_report, _) =
        run_with_scripted_answerer(&dir, || engine.run_with_backend(&factory).expect("run"));

    // Resume with NO answerer: if the engine posted anything it would hang,
    // so a completed in-bound run is itself proof nothing was asked.
    let hits_before = pending_hits(&dir).expect("scan").len();
    let factory = SpoolFactory::new(spool_cfg(&dir)).expect("factory");
    let report = engine.resume_with_backend(&journal, &factory).expect("finished resume");
    assert_eq!(pending_hits(&dir).expect("scan").len(), hits_before, "no new HITs published");
    assert_eq!(report.num_new_answers(), 0);
    assert_eq!(report.num_replayed_answers(), full_report.num_crowd_answers());
    for sp in cs.pairs() {
        assert_eq!(report.result.label_of(sp.pair), full_report.result.label_of(sp.pair));
        assert_eq!(report.result.label_of(sp.pair), Some(truth.label_of(sp.pair)));
    }
    assert_eq!(report.total_cost_cents, full_report.total_cost_cents, "no money re-spent");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// An external answerer can disagree with the machine's expected answer;
/// the engine trusts the crowd and deduces from what it was told.
#[test]
fn external_answers_overrule_the_expected_truth() {
    let (cs, _) = running_example();
    let order = sort_pairs(&cs, crowdjoin::SortStrategy::ExpectedLikelihood);
    // The answerer claims *nothing* matches, whatever the HIT file expects.
    let truth = GroundTruth::from_clusters(6, &[vec![0, 1, 2], vec![3, 4]]);
    let dir = temp_dir("contrarian");
    let factory = SpoolFactory::new(spool_cfg(&dir)).expect("factory");
    let platform = platform_cfg();
    let engine = Engine::new(
        cs.num_objects(),
        &order,
        &truth,
        &platform,
        EngineConfig { num_shards: 1, ..EngineConfig::default() },
    );

    let done = Arc::new(AtomicBool::new(false));
    let answerer = {
        let dir = dir.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            while !done.load(Ordering::Relaxed) {
                answer_pending(&dir, |_| false).expect("answerer scan");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        })
    };
    let report = engine.run_with_backend(&factory).expect("run");
    done.store(true, Ordering::Relaxed);
    answerer.join().expect("answerer thread");

    for sp in cs.pairs() {
        assert_eq!(report.result.label_of(sp.pair), Some(Label::NonMatching));
    }
    // All-non-matching answers admit no transitive deduction (negative
    // deduction needs a positive edge), so the crowd answered everything —
    // the engine asked exactly what the answers justified, no less.
    assert_eq!(report.num_crowdsourced(), cs.len());
    assert_eq!(report.num_deduced(), 0);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
