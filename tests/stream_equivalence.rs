//! End-to-end property: the *same records* streamed in K different seeded
//! interleavings produce — after the canonical close — labels, provenance,
//! money, and per-shard stats **bit-identical** to the batch pipeline over
//! those records, at 1 shard and at 4 shards. Arrival order is an accident
//! of the transport; nothing downstream may depend on it.

use crowdjoin::engine::{run_with_oracle, StreamEngine};
use crowdjoin::matcher::{generate_candidates, MatcherConfig, ScoredCandidate};
use crowdjoin::records::{generate_paper, ClusterSpec, Dataset, PaperGenConfig, PerturbConfig};
use crowdjoin::sim::PlatformConfig;
use crowdjoin::{
    run_sharded_on_platform, sort_pairs, to_candidate_set, EngineConfig, EngineReport, GroundTruth,
    ScoredPair, SharedGroundTruth, SharedOracle, SortStrategy, StreamJob,
};

const NUM_RECORDS: usize = 120;
const INTERLEAVINGS: u64 = 3;

fn dataset() -> Dataset {
    generate_paper(&PaperGenConfig {
        num_records: NUM_RECORDS,
        clusters: ClusterSpec::Explicit(vec![(5, 8), (3, 10), (2, 10)]),
        perturb: PerturbConfig::light(),
        sibling_probability: 0.1,
        seed: 23,
    })
}

fn config() -> MatcherConfig {
    MatcherConfig { min_likelihood: 0.2, ..MatcherConfig::for_arity(5) }
}

/// Seeded Fisher–Yates (splitmix64) arrival order.
fn shuffled(n: usize, seed: u64) -> Vec<usize> {
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, (next() % (i as u64 + 1)) as usize);
    }
    order
}

/// Streams `ds` in the given arrival order (external id = canonical index)
/// in ragged batch sizes, then closes to the canonical candidates.
fn stream_candidates(ds: &Dataset, arrivals: &[usize]) -> Vec<ScoredCandidate> {
    let mut job = StreamJob::new(ds.table.schema().clone(), config(), 0);
    let mut pending = Vec::new();
    for (k, &i) in arrivals.iter().enumerate() {
        pending.push((i as u32, ds.table.record(i).clone()));
        // Ragged batches (1–7 records) so chunking itself is exercised.
        if pending.len() == 1 + k % 7 {
            job.ingest(&pending).expect("unjournaled ingest");
            pending.clear();
        }
    }
    if !pending.is_empty() {
        job.ingest(&pending).expect("unjournaled ingest");
    }
    let (closed, candidates) = job.close().expect("unjournaled close");
    assert_eq!(closed.len(), ds.len());
    candidates
}

fn labeling_order(ds: &Dataset, candidates: &[ScoredCandidate]) -> Vec<ScoredPair> {
    let set = to_candidate_set(ds, candidates).above_threshold(0.3);
    sort_pairs(&set, SortStrategy::ExpectedLikelihood)
}

/// Bit-identical comparison of two platform runs: merged labels and
/// provenance on every pair, money, completion, per-shard stats.
fn assert_reports_identical(a: &EngineReport, b: &EngineReport, order: &[ScoredPair], ctx: &str) {
    assert_eq!(a.result.num_labeled(), b.result.num_labeled(), "{ctx}: labeled");
    assert_eq!(a.result.num_crowdsourced(), b.result.num_crowdsourced(), "{ctx}: crowdsourced");
    assert_eq!(a.total_cost_cents, b.total_cost_cents, "{ctx}: money");
    assert_eq!(a.completion, b.completion, "{ctx}: completion");
    for sp in order {
        assert_eq!(a.result.label_of(sp.pair), b.result.label_of(sp.pair), "{ctx}: {}", sp.pair);
        assert_eq!(a.result.provenance_of(sp.pair), b.result.provenance_of(sp.pair), "{ctx}");
    }
    assert_eq!(a.shards.len(), b.shards.len(), "{ctx}: shard count");
    for (x, y) in a.shards.iter().zip(&b.shards) {
        assert_eq!(x.stats, y.stats, "{ctx}: shard {} platform stats", x.shard);
        assert_eq!(x.completion, y.completion, "{ctx}: shard {} completion", x.shard);
    }
}

/// The canonical close is bit-identical to the batch matcher for every
/// interleaving — the precondition for everything downstream.
#[test]
fn interleavings_close_to_batch_candidates() {
    let ds = dataset();
    let batch = generate_candidates(&ds, &config());
    assert!(!batch.is_empty(), "workload must generate candidates");
    for k in 0..INTERLEAVINGS {
        let streamed = stream_candidates(&ds, &shuffled(ds.len(), 1000 + k));
        assert_eq!(streamed.len(), batch.len(), "interleaving {k}: candidate count");
        for (s, b) in streamed.iter().zip(&batch) {
            assert_eq!((s.a, s.b), (b.a, b.b), "interleaving {k}");
            assert_eq!(
                s.likelihood.to_bits(),
                b.likelihood.to_bits(),
                "interleaving {k}: likelihood bits on ({}, {})",
                s.a,
                s.b
            );
        }
    }
}

/// Full pipeline: every interleaving, at 1 and 4 shards, runs the platform
/// engine to the same labels, provenance, money, and per-shard stats as
/// the batch pipeline.
#[test]
fn interleavings_label_identically_to_batch() {
    let ds = dataset();
    let truth = GroundTruth::new(ds.entity_of.clone());
    let platform = PlatformConfig { num_workers: 60, ..PlatformConfig::amt_like(17) };
    let batch_order = labeling_order(&ds, &generate_candidates(&ds, &config()));
    assert!(!batch_order.is_empty());

    for shards in [1usize, 4] {
        let engine = EngineConfig {
            num_shards: shards,
            num_threads: 2,
            seed: 11,
            ..EngineConfig::default()
        };
        let batch_report =
            run_sharded_on_platform(ds.len(), &batch_order, &truth, &platform, &engine);
        for k in 0..INTERLEAVINGS {
            let order = labeling_order(&ds, &stream_candidates(&ds, &shuffled(ds.len(), 1000 + k)));
            let report = run_sharded_on_platform(ds.len(), &order, &truth, &platform, &engine);
            assert_reports_identical(
                &batch_report,
                &report,
                &batch_order,
                &format!("interleaving {k} @ {shards} shard(s)"),
            );
        }
    }
}

/// Mid-job admission: feeding each interleaving's candidates to a
/// [`StreamEngine`] in mid-stream steps ends at the same final labels as
/// one batch engine run, and never pays for a pair twice across steps.
#[test]
fn stream_engine_admission_matches_batch_labels() {
    let ds = dataset();
    let truth = GroundTruth::new(ds.entity_of.clone());
    let oracle = SharedGroundTruth::new(&truth);
    let batch_order = labeling_order(&ds, &generate_candidates(&ds, &config()));
    let engine = EngineConfig { num_shards: 4, num_threads: 2, ..EngineConfig::default() };
    let batch = run_with_oracle(ds.len(), &batch_order, &oracle, &engine);

    for k in 0..INTERLEAVINGS {
        let order = labeling_order(&ds, &stream_candidates(&ds, &shuffled(ds.len(), 1000 + k)));
        let mut se = StreamEngine::new(engine.clone());
        let step_oracle = SharedGroundTruth::new(&truth);
        let mut paid = 0u64;
        for chunk in order.chunks(order.len().div_ceil(3).max(1)) {
            se.ingest(ds.len(), chunk);
            let step = se.step_with_oracle(&step_oracle);
            paid += step.new_answers as u64;
        }
        assert_eq!(
            paid,
            step_oracle.questions_asked(),
            "interleaving {k}: every oracle question is a new answer exactly once"
        );
        let final_step = se.step_with_oracle(&step_oracle);
        assert_eq!(final_step.new_answers, 0, "interleaving {k}: a settled job buys nothing");
        for sp in &batch_order {
            assert_eq!(
                final_step.result.label_of(sp.pair),
                batch.result.label_of(sp.pair),
                "interleaving {k}: label of {}",
                sp.pair
            );
        }
    }
}
