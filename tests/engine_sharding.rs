//! Shard-equivalence tests for the execution engine: the sharded engine
//! must agree with the single-threaded `ParallelLabeler` on the bundled
//! generators, at every shard count, and be bit-deterministic for a fixed
//! seed.

use crowdjoin::engine::SharedGroundTruth;
use crowdjoin::matcher::MatcherConfig;
use crowdjoin::records::{
    generate_paper, generate_product, ClusterSpec, PaperGenConfig, PerturbConfig, ProductGenConfig,
};
use crowdjoin::sim::PlatformConfig;
use crowdjoin::{
    build_task, run_parallel_rounds, run_sharded_on_platform, run_sharded_with_oracle, sort_pairs,
    CandidateSet, EngineConfig, GroundTruth, GroundTruthOracle, Label, NoisyOracle, ScoredPair,
    SortStrategy, SyncOracle,
};

fn paper_workload() -> (CandidateSet, GroundTruth, Vec<ScoredPair>) {
    let dataset = generate_paper(&PaperGenConfig {
        num_records: 300,
        clusters: ClusterSpec::PowerLaw { alpha: 1.9, max_size: 20, force_max: true },
        perturb: PerturbConfig::light(),
        sibling_probability: 0.2,
        seed: 20130622,
    });
    let (task, truth) = build_task(&dataset, &MatcherConfig::for_arity(5), 0.3);
    let candidates = task.candidates().clone();
    let order = sort_pairs(&candidates, SortStrategy::ExpectedLikelihood);
    (candidates, truth, order)
}

fn product_workload() -> (CandidateSet, GroundTruth, Vec<ScoredPair>) {
    let dataset = generate_product(&ProductGenConfig {
        table_a: 150,
        table_b: 150,
        // Scaled-down version of the default Figure 10(b) mix (the default
        // spec needs ~1914 records).
        clusters: ClusterSpec::Explicit(vec![(2, 90), (3, 20), (4, 6), (5, 2), (6, 1)]),
        ..ProductGenConfig::default()
    });
    let matcher = MatcherConfig { field_weights: vec![1.0, 0.25], ..MatcherConfig::for_arity(2) };
    let (task, truth) = build_task(&dataset, &matcher, 0.3);
    let candidates = task.candidates().clone();
    let order = sort_pairs(&candidates, SortStrategy::ExpectedLikelihood);
    (candidates, truth, order)
}

/// The sharded engine must produce the same labels as the single-threaded
/// parallel labeler on every candidate pair, and crowdsource the same
/// number of pairs (components are deduction-independent, so sharding
/// cannot change which pairs Algorithm 3 publishes).
fn assert_shard_equivalence(candidates: &CandidateSet, truth: &GroundTruth, order: &[ScoredPair]) {
    let mut oracle = GroundTruthOracle::new(truth);
    let (baseline, _) = run_parallel_rounds(candidates.num_objects(), order.to_vec(), &mut oracle);
    assert_eq!(baseline.num_labeled(), candidates.len());

    for shards in [1usize, 2, 8] {
        let shared = SharedGroundTruth::new(truth);
        let report = run_sharded_with_oracle(
            candidates.num_objects(),
            order,
            &shared,
            &EngineConfig::with_shards(shards),
        );
        assert_eq!(
            report.result.num_labeled(),
            baseline.num_labeled(),
            "{shards} shards: must label every pair"
        );
        for sp in candidates.pairs() {
            assert_eq!(
                report.result.label_of(sp.pair),
                baseline.label_of(sp.pair),
                "{shards} shards: label diverged on {}",
                sp.pair
            );
        }
        // Deduction is component-local, so the crowdsourced count is not
        // merely "within tolerance" — it is identical.
        assert_eq!(
            report.result.num_crowdsourced(),
            baseline.num_crowdsourced(),
            "{shards} shards: crowdsourced count diverged"
        );
        assert!(report.num_shards() <= shards.max(1));
        assert!(report.num_shards() <= report.num_components.max(1));
    }
}

#[test]
fn paper_workload_shard_equivalence() {
    let (candidates, truth, order) = paper_workload();
    assert!(candidates.len() > 100, "workload too small to be meaningful");
    assert_shard_equivalence(&candidates, &truth, &order);
}

#[test]
fn product_workload_shard_equivalence() {
    let (candidates, truth, order) = product_workload();
    assert!(candidates.len() > 50, "workload too small to be meaningful");
    assert_shard_equivalence(&candidates, &truth, &order);
}

/// Fixed seed ⇒ bit-identical results, run to run, including virtual time
/// and money on the simulated platform.
#[test]
fn sharded_platform_run_is_deterministic() {
    let (candidates, truth, order) = paper_workload();
    let cfg = EngineConfig { num_shards: 4, seed: 99, ..EngineConfig::default() };
    let run = || {
        run_sharded_on_platform(
            candidates.num_objects(),
            &order,
            &truth,
            &PlatformConfig::perfect_workers(5),
            &cfg,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.completion, b.completion);
    assert_eq!(a.total_cost_cents, b.total_cost_cents);
    assert_eq!(a.result.num_crowdsourced(), b.result.num_crowdsourced());
    assert_eq!(a.result.num_deduced(), b.result.num_deduced());
    for sp in candidates.pairs() {
        assert_eq!(a.result.label_of(sp.pair), b.result.label_of(sp.pair));
    }
    // And the platform arms actually labeled everything correctly.
    for sp in candidates.pairs() {
        assert_eq!(a.result.label_of(sp.pair), Some(truth.label_of(sp.pair)));
    }
}

/// A noisy (but pair-deterministic) oracle: sharding must not change which
/// answer any pair receives, so repeated runs at any shard count are
/// self-consistent and crowdsourced answers match the oracle's per-pair
/// stream.
#[test]
fn noisy_oracle_sharding_is_deterministic() {
    let (candidates, truth, order) = product_workload();
    let run = |shards: usize| {
        let noisy = SyncOracle::new(NoisyOracle::new(&truth, 0.05, 1234));
        run_sharded_with_oracle(
            candidates.num_objects(),
            &order,
            &noisy,
            &EngineConfig::with_shards(shards),
        )
    };
    let once = run(8);
    let again = run(8);
    assert_eq!(once.result.num_crowdsourced(), again.result.num_crowdsourced());
    assert_eq!(once.result.num_conflicts(), again.result.num_conflicts());
    for sp in candidates.pairs() {
        assert_eq!(once.result.label_of(sp.pair), again.result.label_of(sp.pair));
    }
    // Labels are booleans over the same pairs, so the merged result is
    // complete even under noise.
    assert_eq!(once.result.num_labeled(), candidates.len());
    let _ = Label::Matching;
}

/// Platform-driven sharding models a **fixed crowd split across shards**
/// (each shard's platform gets `num_workers / shards`), so shard counts
/// compare runs of equal total crowd labor. Sharding must never change the
/// money cost, completion is reported as the critical path (max over
/// shards), and the statically-divided crowd bounds how much the critical
/// path can inflate on unbalanced shards.
#[test]
fn sharded_platform_divides_crowd_and_keeps_cost() {
    let (candidates, truth, order) = paper_workload();
    let platform = PlatformConfig::perfect_workers(11);
    let single = run_sharded_on_platform(
        candidates.num_objects(),
        &order,
        &truth,
        &platform,
        &EngineConfig { num_shards: 1, seed: 7, ..EngineConfig::default() },
    );
    let sharded = run_sharded_on_platform(
        candidates.num_objects(),
        &order,
        &truth,
        &platform,
        &EngineConfig { num_shards: 8, seed: 7, ..EngineConfig::default() },
    );
    assert_eq!(
        single.result.num_crowdsourced(),
        sharded.result.num_crowdsourced(),
        "sharding must not change crowd cost"
    );
    // Money accounting: the same pairs are answered at the same
    // assignments-per-HIT, but each shard flushes its own partial HITs, so
    // sharding fragments HIT packing (observed ~30% more HITs on this small
    // workload; the relative overhead shrinks as shards fill whole HITs).
    // It can only add HITs, never remove answers.
    let single_cost = single.total_cost_cents;
    let sharded_cost = sharded.total_cost_cents;
    assert!(
        sharded_cost >= single_cost,
        "sharding cannot answer fewer assignments ({sharded_cost}¢ vs {single_cost}¢)"
    );
    assert!(
        sharded_cost <= single_cost * 2,
        "HIT fragmentation overhead blew past 2x: {sharded_cost}¢ vs {single_cost}¢"
    );
    // Completion is the max over shards. With the crowd statically divided
    // 8 ways, an unbalanced shard can stretch the critical path, but never
    // past ~num_shards × the single-platform run (that would mean shards
    // idling work the model says is available).
    assert!(sharded.completion >= single.completion, "divided crowd cannot finish sooner");
    assert!(
        sharded.completion.as_hours() <= single.completion.as_hours() * 8.0,
        "critical path {:.2}h blew past the 8x fixed-crowd envelope ({:.2}h single)",
        sharded.completion.as_hours(),
        single.completion.as_hours()
    );
    // Report structure: completion really is the per-shard maximum.
    let max_shard = sharded.shards.iter().map(|s| s.completion).max().unwrap();
    assert_eq!(sharded.completion, max_shard);

    // The partial-HIT fragmentation behind that money overhead, quantified:
    // every shard flushes its own partial HIT per round, so the 8-shard run
    // wastes a bigger fraction of paid pair slots than the single platform —
    // but it must stay within the observed ~30%-per-shard envelope (waste
    // beyond 50% would mean HITs mostly empty, i.e. a batching regression).
    let single_waste = single.partial_hit_waste();
    let sharded_waste = sharded.partial_hit_waste();
    assert!((0.0..1.0).contains(&single_waste));
    assert!(
        sharded_waste >= single_waste,
        "splitting one platform into 8 cannot pack HITs better \
         ({sharded_waste:.3} vs {single_waste:.3})"
    );
    assert!(
        sharded_waste < 0.5,
        "per-shard partial-HIT waste blew past 50% of paid slots: {sharded_waste:.3}"
    );
    // Waste and money tell one story: the cost ratio never exceeds what the
    // slot fragmentation accounts for.
    let slot_ratio = (1.0 - single_waste) / (1.0 - sharded_waste);
    assert!(
        sharded_cost as f64 <= single_cost as f64 * slot_ratio + 1e-9,
        "cost overhead {}¢/{}¢ exceeds the slot-fragmentation ratio {slot_ratio:.3}",
        sharded_cost,
        single_cost
    );
}
