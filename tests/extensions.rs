//! Integration tests for the extension features (Section 8 future-work
//! items and the related-work budget setting): entity-cluster extraction,
//! one-to-one constraints, and budget-limited labeling, composed over the
//! full pipeline.

use crowdjoin::matcher::MatcherConfig;
use crowdjoin::records::{
    generate_paper, generate_product, ClusterSpec, PaperGenConfig, PerturbConfig, ProductGenConfig,
};
use crowdjoin::{
    build_task, enforce_one_to_one, ground_truth_of, label_with_budget, resolve_entities,
    sort_pairs, to_candidate_set, GroundTruthOracle, Label, OneToOneDeducer, Pair, QualityMetrics,
    ScoredPair, SortStrategy,
};

#[test]
fn resolution_recovers_generated_entities() {
    let ds = generate_paper(&PaperGenConfig {
        num_records: 120,
        clusters: ClusterSpec::PowerLaw { alpha: 1.9, max_size: 20, force_max: true },
        perturb: PerturbConfig::light(),
        sibling_probability: 0.2,
        seed: 404,
    });
    // A low threshold so the candidate set covers (essentially) all true
    // pairs — light perturbation keeps duplicates similar.
    let (task, truth) = build_task(&ds, &MatcherConfig::for_arity(5), 0.15);
    let mut crowd = GroundTruthOracle::new(&truth);
    let result = task.run_sequential(SortStrategy::ExpectedLikelihood, &mut crowd);
    let resolution = resolve_entities(ds.len(), &result);
    assert!(resolution.is_consistent());

    // Compare the resolved clustering against the generated truth pairwise
    // over candidate pairs: perfect oracle ⇒ no false merges.
    let assignment = resolution.as_assignment(ds.len());
    for sp in task.candidates().pairs() {
        assert_eq!(assignment.is_matching(sp.pair), truth.is_matching(sp.pair));
    }
    // The resolution can't invent entities: every resolved cluster is a
    // subset of one true cluster (perfect answers).
    for cluster in &resolution.clusters {
        let first = truth.entity_of(cluster[0]);
        for &o in cluster {
            assert_eq!(truth.entity_of(o), first, "false merge in cluster {cluster:?}");
        }
    }
}

#[test]
fn one_to_one_cleanup_improves_noisy_cross_join_precision() {
    let ds = generate_product(&ProductGenConfig {
        table_a: 150,
        table_b: 150,
        clusters: ClusterSpec::Explicit(vec![(2, 120)]),
        perturb: PerturbConfig::light(),
        seed: 1234,
    });
    let truth = ground_truth_of(&ds);
    let matcher = MatcherConfig { field_weights: vec![1.0, 0.25], ..MatcherConfig::for_arity(2) };
    let raw = crowdjoin::matcher::generate_candidates(&ds, &matcher);
    let candidates = to_candidate_set(&ds, &raw).above_threshold(0.2);

    // A noisy crowd produces some false matches; with strictly 1:1 truth,
    // every record has at most one true partner, so one-to-one cleanup can
    // only remove errors.
    let order = sort_pairs(&candidates, SortStrategy::ExpectedLikelihood);
    let mut crowd = crowdjoin::NoisyOracle::new(&truth, 0.15, 99);
    let result = crowdjoin::label_sequential(candidates.num_objects(), &order, &mut crowd);

    let matches: Vec<ScoredPair> = order
        .iter()
        .copied()
        .filter(|sp| result.label_of(sp.pair) == Some(Label::Matching))
        .collect();
    let before =
        QualityMetrics::evaluate(matches.iter().map(|sp| (sp.pair, Label::Matching)), &truth);
    let cleaned = enforce_one_to_one(&matches);
    let after =
        QualityMetrics::evaluate(cleaned.kept.iter().map(|sp| (sp.pair, Label::Matching)), &truth);
    assert!(
        after.precision() >= before.precision(),
        "cleanup lowered precision: {:.3} -> {:.3}",
        before.precision(),
        after.precision()
    );
    // All kept pairs are endpoint-disjoint.
    let mut used = std::collections::BTreeSet::new();
    for sp in &cleaned.kept {
        assert!(used.insert(sp.pair.a()) && used.insert(sp.pair.b()));
    }
}

#[test]
fn online_one_to_one_deducer_saves_questions() {
    // Manually drive labeling with the online 1:1 tracker: once (a, b)
    // matches, other pairs touching a or b are answered by the constraint
    // instead of the crowd.
    let truth = crowdjoin::GroundTruth::from_clusters(6, &[vec![0, 3]]);
    let order = vec![
        ScoredPair::new(Pair::new(0, 3), 0.9), // true match
        ScoredPair::new(Pair::new(0, 4), 0.8), // excluded by constraint
        ScoredPair::new(Pair::new(1, 3), 0.7), // excluded by constraint
        ScoredPair::new(Pair::new(1, 4), 0.6), // needs the crowd
    ];
    let mut crowd = GroundTruthOracle::new(&truth);
    let mut tracker = OneToOneDeducer::new();
    let mut asked = 0;
    for sp in &order {
        if tracker.excludes(sp.pair) {
            assert_eq!(truth.label_of(sp.pair), Label::NonMatching, "constraint is sound");
            continue;
        }
        use crowdjoin::Oracle as _;
        let label = crowd.answer(sp.pair);
        asked += 1;
        if label == Label::Matching {
            tracker.confirm_match(sp.pair);
        }
    }
    assert_eq!(asked, 2, "constraint deduced two of four pairs");
}

#[test]
fn budget_sweep_on_real_workload() {
    let ds = generate_paper(&PaperGenConfig {
        num_records: 150,
        clusters: ClusterSpec::PowerLaw { alpha: 1.9, max_size: 25, force_max: true },
        perturb: PerturbConfig::heavy(),
        sibling_probability: 0.3,
        seed: 606,
    });
    let (task, truth) = build_task(&ds, &MatcherConfig::for_arity(5), 0.3);
    let order = sort_pairs(task.candidates(), SortStrategy::ExpectedLikelihood);

    let mut prev_coverage = -1.0;
    for budget in [0usize, 10, 50, 200, usize::MAX / 2] {
        let mut crowd = GroundTruthOracle::new(&truth);
        let out = label_with_budget(task.candidates().num_objects(), &order, &mut crowd, budget);
        assert!(out.coverage() >= prev_coverage - 1e-12, "coverage regressed at {budget}");
        prev_coverage = out.coverage();
        // Sound labels at every budget.
        for lp in out.result.labeled_pairs() {
            assert_eq!(lp.label, truth.label_of(lp.pair));
        }
    }
    assert_eq!(prev_coverage, 1.0, "unbounded budget labels everything");
}

#[test]
fn budget_beats_naive_spend_on_likelihood_order() {
    // Spending B answers via the transitive framework labels (far) more
    // pairs than the non-transitive baseline's B labels on heavy-tail data.
    let ds = generate_paper(&PaperGenConfig {
        num_records: 150,
        clusters: ClusterSpec::PowerLaw { alpha: 1.9, max_size: 25, force_max: true },
        perturb: PerturbConfig::heavy(),
        sibling_probability: 0.3,
        seed: 607,
    });
    let (task, truth) = build_task(&ds, &MatcherConfig::for_arity(5), 0.3);
    let order = sort_pairs(task.candidates(), SortStrategy::ExpectedLikelihood);
    let budget = task.candidates().len() / 10;
    let mut crowd = GroundTruthOracle::new(&truth);
    let out = label_with_budget(task.candidates().num_objects(), &order, &mut crowd, budget);
    assert!(
        out.result.num_labeled() > budget * 2,
        "transitivity should at least double the budget's reach: {} labeled from {} answers",
        out.result.num_labeled(),
        budget
    );
}
