//! A `CrowdBackend` test double that delivers completions in shuffled
//! (but time-valid) order, pinning the event loop's tolerance for
//! backends that — like any real crowd — do not resolve HITs in the order
//! the simulator would hand them back.
//!
//! The double wraps a real simulator platform: posted HITs simulate
//! normally, but resolution batches are buffered and released in a
//! seeded-shuffled order. Each delivered batch keeps its true resolution
//! timestamp (never in the future — "time-valid"), only the hand-back
//! order changes. With instant decision off, publish decisions happen at
//! fully-resolved round boundaries where the answer *set* — not its
//! arrival order — determines the next batch, so labels, crowdsourced
//! counts, and money must all equal the in-order run bit for bit; and a
//! fixed shuffle seed must reproduce the identical report.

use crowdjoin::sim::{
    BackendFactory, CrowdBackend, Platform, PlatformConfig, PlatformStats, ResolvedTask,
    ShardContext, TaskSpec, TimeSource, VirtualClock, VirtualTime,
};
use crowdjoin::util::{derive_seed, SplitMix64};
use crowdjoin::{
    sort_pairs, CandidateSet, Engine, EngineConfig, EngineReport, GroundTruth, Pair, ScoredPair,
    SortStrategy,
};

/// Wraps a simulator platform and shuffles the order in which ready
/// resolution batches are handed back.
#[derive(Debug)]
struct ShuffledBackend {
    inner: Platform,
    /// Batches the inner platform resolved but the caller has not seen.
    buffered: Vec<(VirtualTime, Vec<ResolvedTask>)>,
    rng: SplitMix64,
}

impl CrowdBackend for ShuffledBackend {
    fn post_hits(&mut self, tasks: Vec<TaskSpec>) {
        self.inner.post_hits(tasks);
    }

    fn poll_completions(&mut self, until: VirtualTime) -> Option<(VirtualTime, Vec<ResolvedTask>)> {
        // Drain everything the simulator has ready by `until`, then hand
        // back a uniformly chosen buffered batch — out of order, but every
        // batch still stamped with its true (past) resolution time.
        while let Some(batch) = self.inner.poll_completions(until) {
            self.buffered.push(batch);
        }
        if self.buffered.is_empty() {
            return None;
        }
        let k = (self.rng.next_u64() % self.buffered.len() as u64) as usize;
        let batch = self.buffered.swap_remove(k);
        debug_assert!(batch.0 <= self.now(), "delivered resolution from the future");
        Some(batch)
    }

    fn next_event_time(&self) -> Option<VirtualTime> {
        if self.buffered.is_empty() {
            self.inner.next_event_time()
        } else {
            Some(self.inner.now())
        }
    }

    fn now(&self) -> VirtualTime {
        self.inner.now()
    }

    fn num_unresolved_pairs(&self) -> usize {
        // Undelivered buffered pairs are still unresolved from the
        // caller's point of view — the round boundary must not fire early.
        self.inner.num_unresolved_pairs()
            + self.buffered.iter().map(|(_, r)| r.len()).sum::<usize>()
    }

    fn batch_size(&self) -> usize {
        self.inner.batch_size()
    }

    fn stats(&self) -> PlatformStats {
        self.inner.stats()
    }

    fn warp_to(&mut self, t: VirtualTime) {
        self.inner.warp_to(t);
    }
}

struct ShuffledFactory {
    clock: VirtualClock,
    shuffle_seed: u64,
}

impl ShuffledFactory {
    fn new(shuffle_seed: u64) -> Self {
        Self { clock: VirtualClock, shuffle_seed }
    }
}

impl BackendFactory for ShuffledFactory {
    type Backend = ShuffledBackend;

    fn create(&self, cfg: &PlatformConfig, shard: &ShardContext) -> ShuffledBackend {
        ShuffledBackend {
            inner: Platform::new(cfg.clone()),
            buffered: Vec::new(),
            rng: SplitMix64::new(derive_seed(self.shuffle_seed, shard.report_index as u64)),
        }
    }

    fn time_source(&self) -> &dyn TimeSource {
        &self.clock
    }

    fn deterministic_replay(&self) -> bool {
        true
    }
}

/// A workload big enough for several publish rounds and multiple shards.
fn workload() -> (CandidateSet, GroundTruth, Vec<ScoredPair>) {
    // Six disjoint 4-cliques (each fully matching) plus cross-component
    // noise pairs, so every shard needs deduction and several rounds.
    let num_objects = 30u32;
    let mut clusters = Vec::new();
    for c in 0..6u32 {
        clusters.push((0..4).map(|i| c * 4 + i).collect::<Vec<_>>());
    }
    let truth = GroundTruth::from_clusters(num_objects as usize, &clusters);
    let mut pairs = Vec::new();
    let mut rng = SplitMix64::new(99);
    for c in 0..6u32 {
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                pairs.push(ScoredPair::new(
                    Pair::new(c * 4 + i, c * 4 + j),
                    0.6 + 0.4 * rng.next_f64(),
                ));
            }
        }
    }
    // Likely-non-matching noise, including the spare objects 24..30.
    for k in 0..20u64 {
        let a = (rng.next_u64() % u64::from(num_objects)) as u32;
        let b = (rng.next_u64() % u64::from(num_objects)) as u32;
        if a != b && !pairs.iter().any(|sp: &ScoredPair| sp.pair == Pair::new(a, b)) {
            pairs.push(ScoredPair::new(Pair::new(a, b), 0.3 + 0.01 * k as f64));
        }
    }
    let cs = CandidateSet::new(num_objects as usize, pairs);
    let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
    (cs, truth, order)
}

fn run_with<F: BackendFactory>(factory: &F, shards: usize) -> EngineReport {
    let (cs, truth, order) = workload();
    let platform = PlatformConfig::perfect_workers(17);
    // Instant decision off: publish decisions happen at fully-resolved
    // round boundaries, where only the answer *set* matters — the
    // invariant that makes out-of-order delivery equivalence exact.
    let config =
        EngineConfig { num_shards: shards, instant_decision: false, ..EngineConfig::default() };
    Engine::new(cs.num_objects(), &order, &truth, &platform, config)
        .run_with_backend(factory)
        .expect("unjournaled run cannot fail")
}

#[test]
fn shuffled_completions_match_in_order_run_exactly() {
    for shards in [1usize, 4] {
        let in_order = run_with(&crowdjoin::SimFactory::new(), shards);
        let shuffled = run_with(&ShuffledFactory::new(0xBAD5EED), shards);

        let (cs, truth, _) = workload();
        assert_eq!(shuffled.result.num_labeled(), cs.len());
        for sp in cs.pairs() {
            assert_eq!(
                shuffled.result.label_of(sp.pair),
                in_order.result.label_of(sp.pair),
                "label of {} diverged under shuffling ({shards} shards)",
                sp.pair
            );
            assert_eq!(shuffled.result.label_of(sp.pair), Some(truth.label_of(sp.pair)));
        }
        // Same questions asked, same money, same per-shard platform work.
        assert_eq!(shuffled.num_crowdsourced(), in_order.num_crowdsourced());
        assert_eq!(shuffled.num_deduced(), in_order.num_deduced());
        assert_eq!(shuffled.total_cost_cents, in_order.total_cost_cents);
        assert_eq!(shuffled.completion, in_order.completion);
        assert_eq!(shuffled.num_shards(), in_order.num_shards());
        for (a, b) in shuffled.shards.iter().zip(&in_order.shards) {
            assert_eq!(a.stats, b.stats, "shard {} platform stats diverged", a.shard);
            assert_eq!(a.publish_rounds, b.publish_rounds);
        }
    }
}

#[test]
fn shuffled_delivery_is_deterministic_per_seed() {
    let a = run_with(&ShuffledFactory::new(42), 4);
    let b = run_with(&ShuffledFactory::new(42), 4);
    let (cs, _, _) = workload();
    for sp in cs.pairs() {
        assert_eq!(a.result.label_of(sp.pair), b.result.label_of(sp.pair));
        assert_eq!(a.result.provenance_of(sp.pair), b.result.provenance_of(sp.pair));
    }
    assert_eq!(a.total_cost_cents, b.total_cost_cents);
    assert_eq!(a.completion, b.completion);
    for (x, y) in a.shards.iter().zip(&b.shards) {
        assert_eq!(x.stats, y.stats);
    }
}
