//! Failure injection: worker error sweeps, adversarial orders, degenerate
//! candidate graphs. The framework must degrade gracefully, never panic,
//! and keep its accounting consistent.

use crowdjoin::{
    label_sequential, run_parallel_rounds, sort_pairs, CandidateSet, GroundTruth,
    GroundTruthOracle, NoisyOracle, Pair, QualityMetrics, ScoredPair, SortStrategy,
};

/// A clique candidate set over one true cluster.
fn clique(k: u32) -> (GroundTruth, CandidateSet) {
    let truth = GroundTruth::from_clusters(k as usize, &[(0..k).collect()]);
    let mut pairs = Vec::new();
    for a in 0..k {
        for b in (a + 1)..k {
            pairs.push(ScoredPair::new(Pair::new(a, b), 0.9 - (a + b) as f64 * 0.001));
        }
    }
    (truth, CandidateSet::new(k as usize, pairs))
}

/// A star: center matches everyone, leaves all differ pairwise.
fn star(k: u32) -> (GroundTruth, CandidateSet) {
    let truth = GroundTruth::from_clusters((k + 1) as usize, &[vec![0, 1]]);
    let mut pairs = vec![ScoredPair::new(Pair::new(0, 1), 0.95)];
    for leaf in 2..=k {
        pairs.push(ScoredPair::new(Pair::new(0, leaf), 0.5));
        pairs.push(ScoredPair::new(Pair::new(1, leaf), 0.4));
    }
    (truth, CandidateSet::new((k + 1) as usize, pairs))
}

#[test]
fn clique_needs_exactly_spanning_tree() {
    let (truth, cs) = clique(12);
    let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
    let mut oracle = GroundTruthOracle::new(&truth);
    let result = label_sequential(cs.num_objects(), &order, &mut oracle);
    assert_eq!(result.num_crowdsourced(), 11);
    assert_eq!(result.num_deduced(), cs.len() - 11);
}

#[test]
fn star_deduces_leaf_edges() {
    let (truth, cs) = star(10);
    let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
    let mut oracle = GroundTruthOracle::new(&truth);
    let result = label_sequential(cs.num_objects(), &order, &mut oracle);
    // (0,1) matching + one non-matching edge per leaf; the second edge of
    // each leaf is deduced.
    assert_eq!(result.num_crowdsourced(), 1 + 9);
    assert_eq!(result.num_deduced(), 9);
}

#[test]
fn chain_has_no_deduction() {
    // A path of all-distinct objects: nothing is ever deducible (two
    // non-matching edges never deduce).
    let n = 30u32;
    let truth = GroundTruth::all_distinct(n as usize);
    let pairs: Vec<ScoredPair> =
        (0..n - 1).map(|i| ScoredPair::new(Pair::new(i, i + 1), 0.5)).collect();
    let cs = CandidateSet::new(n as usize, pairs);
    let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
    let mut oracle = GroundTruthOracle::new(&truth);
    let result = label_sequential(cs.num_objects(), &order, &mut oracle);
    assert_eq!(result.num_crowdsourced(), (n - 1) as usize);
    assert_eq!(result.num_deduced(), 0);
}

#[test]
fn disconnected_components_are_independent() {
    // Two cliques with no candidate pairs between them.
    let truth = GroundTruth::from_clusters(8, &[vec![0, 1, 2, 3], vec![4, 5, 6, 7]]);
    let mut pairs = Vec::new();
    for group in [[0u32, 1, 2, 3], [4, 5, 6, 7]] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                pairs.push(ScoredPair::new(Pair::new(group[i], group[j]), 0.8));
            }
        }
    }
    let cs = CandidateSet::new(8, pairs);
    let mut oracle = GroundTruthOracle::new(&truth);
    let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
    let result = label_sequential(cs.num_objects(), &order, &mut oracle);
    assert_eq!(result.num_crowdsourced(), 3 + 3, "spanning tree per component");
}

#[test]
fn noise_sweep_quality_monotonically_degrades() {
    let (truth, cs) = clique(14);
    let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
    let mut f_scores = Vec::new();
    for &rate in &[0.0, 0.1, 0.3] {
        let mut oracle = NoisyOracle::new(&truth, rate, 99);
        let result = label_sequential(cs.num_objects(), &order, &mut oracle);
        assert_eq!(result.num_labeled(), cs.len(), "rate {rate}");
        f_scores.push(QualityMetrics::of_result(&result, &truth).f_measure());
    }
    assert_eq!(f_scores[0], 1.0);
    assert!(f_scores[2] < f_scores[0], "30% noise must hurt: {f_scores:?}");
}

#[test]
fn noisy_parallel_never_panics_and_accounts_consistently() {
    for seed in 0..8u64 {
        let (truth, cs) = star(12);
        let order = sort_pairs(&cs, SortStrategy::Random { seed });
        let mut oracle = NoisyOracle::new(&truth, 0.25, seed);
        let (result, stats) = run_parallel_rounds(cs.num_objects(), order, &mut oracle);
        assert_eq!(result.num_labeled(), cs.len());
        assert_eq!(stats.total_crowdsourced(), result.num_crowdsourced());
        // Conflicts are possible under noise but bounded by the number of
        // crowdsourced pairs.
        assert!(result.num_conflicts() <= result.num_crowdsourced());
    }
}

#[test]
fn adversarial_worst_order_still_terminates_and_is_correct() {
    let (truth, cs) = clique(16);
    let order = sort_pairs(&cs, SortStrategy::Worst(&truth));
    let mut oracle = GroundTruthOracle::new(&truth);
    let result = label_sequential(cs.num_objects(), &order, &mut oracle);
    assert_eq!(result.num_labeled(), cs.len());
    for sp in cs.pairs() {
        assert_eq!(result.label_of(sp.pair), Some(truth.label_of(sp.pair)));
    }
}

#[test]
fn empty_and_singleton_candidate_sets() {
    let truth = GroundTruth::all_distinct(3);
    let empty = CandidateSet::new(3, vec![]);
    let mut oracle = GroundTruthOracle::new(&truth);
    let r = label_sequential(3, &sort_pairs(&empty, SortStrategy::ExpectedLikelihood), &mut oracle);
    assert_eq!(r.num_labeled(), 0);

    let single = CandidateSet::new(3, vec![ScoredPair::new(Pair::new(0, 2), 0.5)]);
    let (result, stats) =
        run_parallel_rounds(3, sort_pairs(&single, SortStrategy::ExpectedLikelihood), &mut oracle);
    assert_eq!(result.num_crowdsourced(), 1);
    assert_eq!(stats.num_iterations(), 1);
}

#[test]
fn extreme_likelihoods_are_handled() {
    // All-zero and all-one likelihoods must sort deterministically and label
    // fine.
    let truth = GroundTruth::from_clusters(4, &[vec![0, 1, 2, 3]]);
    let pairs = vec![
        ScoredPair::new(Pair::new(0, 1), 0.0),
        ScoredPair::new(Pair::new(1, 2), 1.0),
        ScoredPair::new(Pair::new(2, 3), 0.0),
        ScoredPair::new(Pair::new(0, 3), 1.0),
    ];
    let cs = CandidateSet::new(4, pairs);
    let mut oracle = GroundTruthOracle::new(&truth);
    let result =
        label_sequential(4, &sort_pairs(&cs, SortStrategy::ExpectedLikelihood), &mut oracle);
    assert_eq!(result.num_labeled(), 4);
    assert_eq!(result.num_crowdsourced(), 3);
}
