//! Golden-schema test for the CLI's observability outputs, driven through
//! the real `crowdjoin` binary: `--trace` must yield a JSONL stream whose
//! every line parses with the workspace's own JSON reader and carries the
//! `ts` / `kind` / `shard` contract, plus a Chrome-trace twin that is one
//! valid `traceEvents` document (what Perfetto loads); `--metrics` and
//! `--report json` must each yield one parseable tagged document; and the
//! labels CSV must be byte-identical with and without the sinks attached.

use crowdjoin::backend_spool::json::{parse, Value};
use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("crowdjoin-trace-schema-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A small dedup workload with real near-duplicates: enough pairs for a
/// few publish rounds on two shards.
fn write_input(dir: &Path) -> PathBuf {
    let names = [
        "sony bravia tv 40in",
        "canon eos camera 5d",
        "apple iphone 12 black",
        "dell xps laptop 13",
        "hp pavilion desktop pc",
        "nike air shoes red",
        "adidas runner shoes blue",
        "samsung galaxy phone s10",
    ];
    let mut csv = String::from("name,price\n");
    for (i, name) in names.iter().enumerate() {
        csv.push_str(&format!("{name},{}\n", 100 + i));
        csv.push_str(&format!("{name} new,{}\n", 100 + i));
        csv.push_str(&format!("{name} boxed,{}\n", 100 + i));
    }
    let path = dir.join("recs.csv");
    std::fs::write(&path, csv).expect("write input");
    path
}

fn run_cli(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_crowdjoin"))
        .args(args)
        .output()
        .expect("spawn crowdjoin binary")
}

#[test]
fn trace_jsonl_and_chrome_follow_the_schema() {
    let dir = temp_dir("golden");
    let input = write_input(&dir);
    let trace = dir.join("t.jsonl");
    let metrics = dir.join("m.json");
    let out = dir.join("out.csv");
    let output = run_cli(&[
        "dedup",
        "--input",
        input.to_str().unwrap(),
        "--platform",
        "perfect",
        "--shards",
        "2",
        "--trace",
        trace.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
        "--report",
        "json",
        "--output",
        out.to_str().unwrap(),
    ]);
    assert!(output.status.success(), "cli failed: {}", String::from_utf8_lossy(&output.stderr));

    // Every JSONL line parses and carries the ts/kind/shard contract.
    let jsonl = std::fs::read_to_string(&trace).expect("trace file");
    let mut kinds = std::collections::BTreeSet::new();
    let mut lines = 0usize;
    for line in jsonl.lines() {
        let v = parse(line).unwrap_or_else(|e| panic!("unparseable trace line {line:?}: {e}"));
        assert!(v.get("ts").and_then(Value::as_u64).is_some(), "no ts in {line}");
        assert!(v.get("shard").and_then(Value::as_u64).is_some(), "no shard in {line}");
        let kind =
            v.get("kind").and_then(Value::as_str).unwrap_or_else(|| panic!("no kind in {line}"));
        kinds.insert(kind.to_string());
        lines += 1;
    }
    assert!(lines > 0, "trace is empty");
    // The acceptance coverage: matcher stages, shard-task state
    // transitions, and backend post/poll spans all present.
    for required in [
        "matcher.tokenize",
        "matcher.index",
        "matcher.probe",
        "task.state",
        "backend.post",
        "backend.poll",
    ] {
        assert!(kinds.contains(required), "trace missing {required}; saw {kinds:?}");
    }

    // The Chrome twin is one valid document Perfetto can load.
    let chrome_path = format!("{}.chrome.json", trace.to_str().unwrap());
    let chrome = std::fs::read_to_string(&chrome_path).expect("chrome trace file");
    let doc = parse(&chrome).expect("chrome trace parses");
    let events = doc.get("traceEvents").and_then(Value::as_arr).expect("traceEvents array");
    assert!(!events.is_empty(), "chrome trace has no events");
    for ev in events {
        assert!(ev.get("ph").and_then(Value::as_str).is_some(), "event without phase");
        assert!(ev.get("pid").and_then(Value::as_u64).is_some(), "event without pid");
    }
    // Complete ("X") events carry durations; at least the matcher spans do.
    assert!(
        events.iter().any(|ev| ev.get("ph").and_then(Value::as_str) == Some("X")
            && ev.get("dur").and_then(Value::as_u64).is_some()),
        "no complete events with durations"
    );

    // Metrics snapshot: tagged document with per-shard rows.
    let m =
        parse(&std::fs::read_to_string(&metrics).expect("metrics file")).expect("metrics parse");
    assert_eq!(m.get("schema").and_then(Value::as_str), Some("crowdjoin-metrics/1"));
    let rows = m.get("metrics").and_then(Value::as_arr).expect("metrics array");
    assert!(
        rows.iter().any(|r| r.get("name").and_then(Value::as_str) == Some("engine.answers")),
        "metrics missing engine.answers"
    );

    // The stdout report: one tagged document with the engine rollups.
    let report = parse(&String::from_utf8_lossy(&output.stdout)).expect("report parses");
    assert_eq!(report.get("schema").and_then(Value::as_str), Some("crowdjoin-report/1"));
    let engine = report.get("engine").expect("engine section");
    assert!(engine.get("shard_metrics").and_then(Value::as_arr).is_some(), "shard_metrics");
    assert!(engine.get("round_metrics").and_then(Value::as_arr).is_some(), "round_metrics");
    assert!(report.get("labeled").is_some(), "labeled section");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn csv_output_is_byte_identical_with_and_without_sinks() {
    let dir = temp_dir("identical");
    let input = write_input(&dir);
    let out_plain = dir.join("plain.csv");
    let out_traced = dir.join("traced.csv");
    let trace = dir.join("t.jsonl");
    let base =
        ["dedup", "--input", input.to_str().unwrap(), "--platform", "perfect", "--shards", "4"];

    let mut plain_args: Vec<&str> = base.to_vec();
    plain_args.extend_from_slice(&["--output", out_plain.to_str().unwrap()]);
    let plain = run_cli(&plain_args);
    assert!(plain.status.success(), "plain run failed: {}", String::from_utf8_lossy(&plain.stderr));

    let mut traced_args: Vec<&str> = base.to_vec();
    traced_args.extend_from_slice(&[
        "--output",
        out_traced.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
    ]);
    let traced = run_cli(&traced_args);
    assert!(
        traced.status.success(),
        "traced run failed: {}",
        String::from_utf8_lossy(&traced.stderr)
    );

    let plain_csv = std::fs::read(&out_plain).expect("plain csv");
    let traced_csv = std::fs::read(&out_traced).expect("traced csv");
    assert!(!plain_csv.is_empty());
    assert_eq!(plain_csv, traced_csv, "labels CSV diverged under tracing");
    // And the human summaries (stderr) agree too.
    assert_eq!(
        String::from_utf8_lossy(&plain.stderr),
        String::from_utf8_lossy(&traced.stderr),
        "human report diverged under tracing"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
