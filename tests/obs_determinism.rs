//! The observability layer's hard constraint, pinned: attaching trace
//! sinks must not change one bit of engine output. A traced run — JSONL
//! and Chrome sinks both live — must produce labels, provenance, money,
//! completion time, per-shard platform stats, and journal *bytes*
//! identical to the untraced run, at 1 and 4 shards, against both the
//! in-order simulator and an out-of-order delivery double. Tracing is
//! read-only bookkeeping; if any of these assertions ever fails, an
//! instrumentation point has grown a side effect.

use crowdjoin::obs::{finish_sinks, install_sink, CaptureSink, ChromeTraceSink, JsonlSink};
use crowdjoin::sim::{
    BackendFactory, CrowdBackend, Platform, PlatformConfig, PlatformStats, ResolvedTask,
    ShardContext, TaskSpec, TimeSource, VirtualClock, VirtualTime,
};
use crowdjoin::util::{derive_seed, SplitMix64};
use crowdjoin::{
    sort_pairs, CandidateSet, Engine, EngineConfig, EngineReport, GroundTruth, Pair, ScoredPair,
    SortStrategy,
};
use std::path::PathBuf;
use std::sync::Mutex;

/// The trace recorder is process-global; tests that install or expect
/// absent sinks must not interleave.
static OBS: Mutex<()> = Mutex::new(());

/// Minimal out-of-order backend double: wraps a simulator platform and
/// hands resolved batches back in seeded-shuffled (but time-valid) order.
#[derive(Debug)]
struct ShuffledBackend {
    inner: Platform,
    buffered: Vec<(VirtualTime, Vec<ResolvedTask>)>,
    rng: SplitMix64,
}

impl CrowdBackend for ShuffledBackend {
    fn post_hits(&mut self, tasks: Vec<TaskSpec>) {
        self.inner.post_hits(tasks);
    }

    fn poll_completions(&mut self, until: VirtualTime) -> Option<(VirtualTime, Vec<ResolvedTask>)> {
        while let Some(batch) = self.inner.poll_completions(until) {
            self.buffered.push(batch);
        }
        if self.buffered.is_empty() {
            return None;
        }
        let k = (self.rng.next_u64() % self.buffered.len() as u64) as usize;
        Some(self.buffered.swap_remove(k))
    }

    fn next_event_time(&self) -> Option<VirtualTime> {
        if self.buffered.is_empty() {
            self.inner.next_event_time()
        } else {
            Some(self.inner.now())
        }
    }

    fn now(&self) -> VirtualTime {
        self.inner.now()
    }

    fn num_unresolved_pairs(&self) -> usize {
        self.inner.num_unresolved_pairs()
            + self.buffered.iter().map(|(_, r)| r.len()).sum::<usize>()
    }

    fn batch_size(&self) -> usize {
        self.inner.batch_size()
    }

    fn stats(&self) -> PlatformStats {
        self.inner.stats()
    }

    fn warp_to(&mut self, t: VirtualTime) {
        self.inner.warp_to(t);
    }
}

struct ShuffledFactory {
    clock: VirtualClock,
    shuffle_seed: u64,
}

impl BackendFactory for ShuffledFactory {
    type Backend = ShuffledBackend;

    fn create(&self, cfg: &PlatformConfig, shard: &ShardContext) -> ShuffledBackend {
        ShuffledBackend {
            inner: Platform::new(cfg.clone()),
            buffered: Vec::new(),
            rng: SplitMix64::new(derive_seed(self.shuffle_seed, shard.report_index as u64)),
        }
    }

    fn time_source(&self) -> &dyn TimeSource {
        &self.clock
    }

    fn deterministic_replay(&self) -> bool {
        true
    }
}

/// Six matching 4-cliques plus noise pairs: multiple shards, multiple
/// publish rounds, real deduction work.
fn workload() -> (CandidateSet, GroundTruth, Vec<ScoredPair>) {
    let num_objects = 30u32;
    let clusters: Vec<Vec<u32>> = (0..6u32).map(|c| (0..4).map(|i| c * 4 + i).collect()).collect();
    let truth = GroundTruth::from_clusters(num_objects as usize, &clusters);
    let mut pairs = Vec::new();
    let mut rng = SplitMix64::new(99);
    for c in 0..6u32 {
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                pairs.push(ScoredPair::new(
                    Pair::new(c * 4 + i, c * 4 + j),
                    0.6 + 0.4 * rng.next_f64(),
                ));
            }
        }
    }
    for k in 0..20u64 {
        let a = (rng.next_u64() % u64::from(num_objects)) as u32;
        let b = (rng.next_u64() % u64::from(num_objects)) as u32;
        if a != b && !pairs.iter().any(|sp: &ScoredPair| sp.pair == Pair::new(a, b)) {
            pairs.push(ScoredPair::new(Pair::new(a, b), 0.3 + 0.01 * k as f64));
        }
    }
    let cs = CandidateSet::new(num_objects as usize, pairs);
    let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
    (cs, truth, order)
}

fn run_with<F: BackendFactory>(
    factory: &F,
    shards: usize,
    journal: Option<PathBuf>,
) -> EngineReport {
    let (cs, truth, order) = workload();
    let platform = PlatformConfig::perfect_workers(17);
    let config = EngineConfig {
        num_shards: shards,
        instant_decision: false,
        journal,
        ..EngineConfig::default()
    };
    Engine::new(cs.num_objects(), &order, &truth, &platform, config)
        .run_with_backend(factory)
        .expect("run")
}

/// Bit-identical: every label and provenance, money, completion, and every
/// per-shard stat block.
fn assert_identical(traced: &EngineReport, plain: &EngineReport, ctx: &str) {
    let (cs, _, _) = workload();
    for sp in cs.pairs() {
        assert_eq!(
            traced.result.label_of(sp.pair),
            plain.result.label_of(sp.pair),
            "{ctx}: label of {} diverged under tracing",
            sp.pair
        );
        assert_eq!(
            traced.result.provenance_of(sp.pair),
            plain.result.provenance_of(sp.pair),
            "{ctx}: provenance of {} diverged",
            sp.pair
        );
    }
    assert_eq!(traced.num_crowdsourced(), plain.num_crowdsourced(), "{ctx}: crowdsourced");
    assert_eq!(traced.num_deduced(), plain.num_deduced(), "{ctx}: deduced");
    assert_eq!(traced.total_cost_cents, plain.total_cost_cents, "{ctx}: money");
    assert_eq!(traced.completion, plain.completion, "{ctx}: completion");
    assert_eq!(traced.num_shards(), plain.num_shards(), "{ctx}: shard count");
    for (a, b) in traced.shards.iter().zip(&plain.shards) {
        assert_eq!(a.stats, b.stats, "{ctx}: shard {} platform stats", a.shard);
        assert_eq!(a.publish_rounds, b.publish_rounds, "{ctx}: shard {} rounds", a.shard);
        assert_eq!(a.peak_unresolved, b.peak_unresolved, "{ctx}: shard {} peak", a.shard);
        assert_eq!(a.rounds, b.rounds, "{ctx}: shard {} round metrics", a.shard);
    }
}

fn run_traced<F: BackendFactory>(factory: &F, shards: usize) -> (EngineReport, usize) {
    let (capture, events) = CaptureSink::new();
    install_sink(Box::new(capture));
    install_sink(Box::new(JsonlSink::new(Vec::new())));
    install_sink(Box::new(ChromeTraceSink::new(Vec::new())));
    let report = run_with(factory, shards, None);
    finish_sinks().expect("sinks flush");
    let n = events.lock().expect("capture").len();
    (report, n)
}

#[test]
fn traced_run_is_bit_identical_to_untraced() {
    let _serial = OBS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    for shards in [1usize, 4] {
        let plain = run_with(&crowdjoin::SimFactory::new(), shards, None);
        let (traced, events) = run_traced(&crowdjoin::SimFactory::new(), shards);
        assert!(events > 0, "sinks were live but captured nothing ({shards} shards)");
        assert_identical(&traced, &plain, &format!("sim backend, {shards} shards"));

        let plain =
            run_with(&ShuffledFactory { clock: VirtualClock, shuffle_seed: 0xF00D }, shards, None);
        let (traced, events) =
            run_traced(&ShuffledFactory { clock: VirtualClock, shuffle_seed: 0xF00D }, shards);
        assert!(events > 0, "no events captured on the out-of-order double");
        assert_identical(&traced, &plain, &format!("out-of-order double, {shards} shards"));
    }
}

/// The journal is the crash-safety ground truth; tracing must not move a
/// single byte of it.
#[test]
fn traced_journal_bytes_identical_to_untraced() {
    let _serial = OBS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let plain_path = dir.join(format!("crowdjoin-obs-det-plain-{pid}.wal"));
    let traced_path = dir.join(format!("crowdjoin-obs-det-traced-{pid}.wal"));
    let _ = std::fs::remove_file(&plain_path);
    let _ = std::fs::remove_file(&traced_path);

    let plain = run_with(&crowdjoin::SimFactory::new(), 4, Some(plain_path.clone()));

    let (capture, events) = CaptureSink::new();
    install_sink(Box::new(capture));
    let traced = run_with(&crowdjoin::SimFactory::new(), 4, Some(traced_path.clone()));
    finish_sinks().expect("sinks flush");
    assert!(!events.lock().expect("capture").is_empty(), "tracing was not live");

    assert_identical(&traced, &plain, "journaled, 4 shards");
    let plain_bytes = std::fs::read(&plain_path).expect("plain journal");
    let traced_bytes = std::fs::read(&traced_path).expect("traced journal");
    assert!(!plain_bytes.is_empty(), "journal should have content");
    assert_eq!(plain_bytes, traced_bytes, "journal bytes diverged under tracing");
    let _ = std::fs::remove_file(&plain_path);
    let _ = std::fs::remove_file(&traced_path);
}
