//! Integration of the labeling framework with the discrete-event crowd
//! platform: cost accounting, completion-time ordering, and quality under
//! noise.

use crowdjoin::matcher::MatcherConfig;
use crowdjoin::records::{generate_paper, ClusterSpec, PaperGenConfig, PerturbConfig};
use crowdjoin::sim::{Platform, PlatformConfig};
use crowdjoin::{
    build_task, replay_pairs_sequentially, run_non_transitive_on_platform,
    run_parallel_on_platform, sort_pairs, Provenance, QualityMetrics, ScoredPair, SortStrategy,
};

fn workload() -> (crowdjoin::LabelingTask, crowdjoin::GroundTruth) {
    let ds = generate_paper(&PaperGenConfig {
        num_records: 150,
        clusters: ClusterSpec::PowerLaw { alpha: 1.9, max_size: 25, force_max: true },
        perturb: PerturbConfig::heavy(),
        sibling_probability: 0.3,
        seed: 77,
    });
    build_task(&ds, &MatcherConfig::for_arity(5), 0.3)
}

#[test]
fn perfect_platform_run_is_exact() {
    let (task, truth) = workload();
    let order = sort_pairs(task.candidates(), SortStrategy::ExpectedLikelihood);
    let mut platform = Platform::new(PlatformConfig::perfect_workers(1));
    let report = run_parallel_on_platform(
        task.candidates().num_objects(),
        order,
        &truth,
        &mut platform,
        true,
    );
    assert_eq!(report.result.num_labeled(), task.candidates().len());
    assert_eq!(report.result.num_conflicts(), 0);
    let q = QualityMetrics::of_result(&report.result, &truth);
    assert_eq!(q.f_measure(), 1.0);
    // Cost accounting: every crowdsourced pair sits in exactly one HIT slot;
    // HITs are at most batch-size pairs.
    let batch = platform.batch_size();
    let min_hits = report.result.num_crowdsourced().div_ceil(batch);
    assert!(report.stats.hits_published >= min_hits);
    assert_eq!(
        report.stats.total_cost_cents,
        report.stats.assignments_completed as u64 * 2,
        "2 cents per assignment"
    );
}

#[test]
fn transitive_is_cheaper_than_non_transitive_on_platform() {
    let (task, truth) = workload();
    let order = sort_pairs(task.candidates(), SortStrategy::ExpectedLikelihood);

    let mut p1 = Platform::new(PlatformConfig::perfect_workers(2));
    let transitive =
        run_parallel_on_platform(task.candidates().num_objects(), order, &truth, &mut p1, true);
    let mut p2 = Platform::new(PlatformConfig::perfect_workers(2));
    let baseline = run_non_transitive_on_platform(task.candidates().pairs(), &truth, &mut p2);

    assert!(
        transitive.stats.total_cost_cents < baseline.stats.total_cost_cents,
        "transitive {}¢ should undercut baseline {}¢",
        transitive.stats.total_cost_cents,
        baseline.stats.total_cost_cents
    );
    assert!(transitive.stats.hits_published < baseline.stats.hits_published);
}

#[test]
fn sequential_replay_slower_parallel_same_cost() {
    let (task, truth) = workload();
    let order = sort_pairs(task.candidates(), SortStrategy::ExpectedLikelihood);
    let mut p1 = Platform::new(PlatformConfig::perfect_workers(3));
    let par = run_parallel_on_platform(
        task.candidates().num_objects(),
        order.clone(),
        &truth,
        &mut p1,
        true,
    );
    let crowdsourced: Vec<ScoredPair> = order
        .iter()
        .copied()
        .filter(|sp| par.result.provenance_of(sp.pair) == Some(Provenance::Crowdsourced))
        .collect();
    let mut p2 = Platform::new(PlatformConfig::perfect_workers(3));
    let seq = replay_pairs_sequentially(&crowdsourced, &truth, &mut p2, 20);

    assert_eq!(seq.result.num_crowdsourced(), par.result.num_crowdsourced());
    assert!(
        seq.completion.as_hours() > 1.5 * par.completion.as_hours(),
        "sequential {:.2}h vs parallel {:.2}h",
        seq.completion.as_hours(),
        par.completion.as_hours()
    );
}

#[test]
fn noisy_platform_quality_degrades_gracefully() {
    let (task, truth) = workload();
    let order = sort_pairs(task.candidates(), SortStrategy::ExpectedLikelihood);
    let mut platform = Platform::new(PlatformConfig::amt_like(4));
    let report = run_parallel_on_platform(
        task.candidates().num_objects(),
        order,
        &truth,
        &mut platform,
        true,
    );
    assert_eq!(report.result.num_labeled(), task.candidates().len());
    let q = QualityMetrics::of_result(&report.result, &truth);
    assert!(q.f_measure() > 0.6, "F collapsed to {:.3}", q.f_measure());
    assert!(q.f_measure() < 1.0, "noise should cost something");
}

#[test]
fn instant_decision_and_plain_parallel_same_final_labels() {
    let (task, truth) = workload();
    let order = sort_pairs(task.candidates(), SortStrategy::ExpectedLikelihood);
    let mut p1 = Platform::new(PlatformConfig::perfect_workers(6));
    let plain = run_parallel_on_platform(
        task.candidates().num_objects(),
        order.clone(),
        &truth,
        &mut p1,
        false,
    );
    let mut p2 = Platform::new(PlatformConfig::perfect_workers(6));
    let id =
        run_parallel_on_platform(task.candidates().num_objects(), order, &truth, &mut p2, true);
    for sp in task.candidates().pairs() {
        assert_eq!(plain.result.label_of(sp.pair), id.result.label_of(sp.pair));
    }
}

#[test]
fn deterministic_reports_per_seed() {
    let (task, truth) = workload();
    let order = sort_pairs(task.candidates(), SortStrategy::ExpectedLikelihood);
    let run = |seed: u64| {
        let mut p = Platform::new(PlatformConfig::amt_like(seed));
        let r = run_parallel_on_platform(
            task.candidates().num_objects(),
            order.clone(),
            &truth,
            &mut p,
            true,
        );
        (r.result.num_crowdsourced(), r.completion, r.stats.hits_published)
    };
    assert_eq!(run(11), run(11));
}
