//! Question-ordering policy contracts: the ordering changes *which* pairs
//! are crowdsourced, never the labels.
//!
//! - Property: every `OrderingMode` yields the same final labels as the
//!   classic likelihood-descending scan, under a perfect crowd at both 1
//!   and 4 shards, and every run's total money equals the sum of its
//!   per-shard partitions.
//! - Noisy crowds stay per-seed deterministic under every policy.
//! - Ablation: the `online` ranker's *exact* expected crowdsourced-question
//!   count (probability-weighted over all consistent worlds, reusing
//!   `core::expected`) stays within a pinned factor of the `exact` policy's
//!   on random small instances, including the paper's Example 4 triangle.
//! - Savings guard (run by CI): `online` never crowdsources more than
//!   `likelihood` on the seed workload under a perfect crowd.

use crowdjoin::engine::ShardLabeler;
use crowdjoin::matcher::MatcherConfig;
use crowdjoin::records::{generate_paper, ClusterSpec, PaperGenConfig, PerturbConfig};
use crowdjoin::sim::PlatformConfig;
use crowdjoin::util::SplitMix64;
use crowdjoin::{
    build_task, run_sharded_on_platform, run_sharded_with_oracle, sort_pairs, EngineConfig,
    EngineReport, GroundTruth, Label, OrderingMode, Pair, ScoredPair, SharedGroundTruth,
    SortStrategy, WorldEnumeration,
};

/// Seed workload shared by the property tests and the CI savings guard: a
/// paper-style dataset large enough to have multi-round components but
/// small enough to keep the 3-policy × 2-shard × 2-crowd matrix fast.
fn seed_workload() -> (usize, Vec<ScoredPair>, GroundTruth) {
    let dataset = generate_paper(&PaperGenConfig {
        num_records: 120,
        clusters: ClusterSpec::PowerLaw { alpha: 1.9, max_size: 12, force_max: true },
        perturb: PerturbConfig::heavy(),
        sibling_probability: 0.2,
        seed: 17,
    });
    let (task, truth) = build_task(&dataset, &MatcherConfig::for_arity(5), 0.3);
    let order = sort_pairs(task.candidates(), SortStrategy::ExpectedLikelihood);
    (dataset.len(), order, truth)
}

fn config(shards: usize, mode: OrderingMode) -> EngineConfig {
    EngineConfig { num_shards: shards, order: mode, seed: 11, ..EngineConfig::default() }
}

/// Labels and money across two reports of jobs over the same pairs: the
/// labels must agree pair by pair, and each report's total money must be
/// exactly the sum of its per-shard partitions.
fn assert_same_labels(a: &EngineReport, b: &EngineReport, order: &[ScoredPair], ctx: &str) {
    assert_eq!(a.result.num_labeled(), b.result.num_labeled(), "{ctx}: labeled count");
    for sp in order {
        assert_eq!(a.result.label_of(sp.pair), b.result.label_of(sp.pair), "{ctx}: {}", sp.pair);
    }
}

fn assert_money_partitions(report: &EngineReport, ctx: &str) {
    let sharded: u64 =
        report.shards.iter().map(|s| s.stats.as_ref().map_or(0, |st| st.total_cost_cents)).sum();
    assert_eq!(report.total_cost_cents, sharded, "{ctx}: money must partition across shards");
}

#[test]
fn policies_agree_on_labels_under_a_perfect_crowd() {
    let (num_objects, order, truth) = seed_workload();
    let platform = PlatformConfig::perfect_workers(7);
    for shards in [1usize, 4] {
        let reference = run_sharded_on_platform(
            num_objects,
            &order,
            &truth,
            &platform,
            &config(shards, OrderingMode::Likelihood),
        );
        assert_eq!(reference.result.num_labeled(), order.len(), "workload fully labeled");
        assert_money_partitions(&reference, "likelihood");
        for mode in [OrderingMode::Exact, OrderingMode::Online] {
            let run = run_sharded_on_platform(
                num_objects,
                &order,
                &truth,
                &platform,
                &config(shards, mode),
            );
            let ctx = format!("{mode} @ {shards} shard(s)");
            assert_same_labels(&reference, &run, &order, &ctx);
            assert_money_partitions(&run, &ctx);
            // The policies split labeled pairs between the crowd and the
            // deducer differently, but every pair is accounted for.
            assert_eq!(
                run.result.num_crowdsourced() + run.result.num_deduced(),
                reference.result.num_crowdsourced() + reference.result.num_deduced(),
                "{ctx}: crowdsourced + deduced is conserved"
            );
        }
    }
}

#[test]
fn policies_agree_on_labels_through_the_oracle_path() {
    let (num_objects, order, truth) = seed_workload();
    let oracle = SharedGroundTruth::new(&truth);
    let reference =
        run_sharded_with_oracle(num_objects, &order, &oracle, &config(4, OrderingMode::Likelihood));
    for mode in [OrderingMode::Exact, OrderingMode::Online] {
        let run = run_sharded_with_oracle(num_objects, &order, &oracle, &config(4, mode));
        assert_same_labels(&reference, &run, &order, &format!("oracle {mode}"));
    }
}

/// Noisy crowds: answers depend on worker RNG streams, so cross-policy
/// labels may legitimately differ — but two runs of the *same* policy and
/// seed must be bit-identical (labels, money, completion, per-shard stats).
#[test]
fn noisy_runs_stay_per_seed_deterministic_under_every_policy() {
    let (num_objects, order, truth) = seed_workload();
    let platform = PlatformConfig { num_workers: 80, ..PlatformConfig::amt_like(29) };
    for mode in OrderingMode::ALL {
        let a = run_sharded_on_platform(num_objects, &order, &truth, &platform, &config(4, mode));
        let b = run_sharded_on_platform(num_objects, &order, &truth, &platform, &config(4, mode));
        let ctx = format!("noisy {mode}");
        assert_same_labels(&a, &b, &order, &ctx);
        assert_eq!(a.total_cost_cents, b.total_cost_cents, "{ctx}: money");
        assert_eq!(a.completion, b.completion, "{ctx}: completion");
        assert_eq!(a.result.num_crowdsourced(), b.result.num_crowdsourced(), "{ctx}: questions");
        for (x, y) in a.shards.iter().zip(&b.shards) {
            assert_eq!(x.stats, y.stats, "{ctx}: shard {} stats", x.shard);
        }
        assert_money_partitions(&a, &ctx);
    }
}

/// The CI savings guard: on the seed workload under a perfect crowd the
/// online ranker must never crowdsource *more* than likelihood-descending.
/// (The strict `<` claim on the 5k product workload lives in
/// `BENCH_engine.json`; this guard pins the cheap always-on invariant.)
#[test]
fn savings_guard_online_never_asks_more_than_likelihood() {
    let (num_objects, order, truth) = seed_workload();
    let platform = PlatformConfig::perfect_workers(7);
    for shards in [1usize, 4] {
        let likelihood = run_sharded_on_platform(
            num_objects,
            &order,
            &truth,
            &platform,
            &config(shards, OrderingMode::Likelihood),
        );
        let online = run_sharded_on_platform(
            num_objects,
            &order,
            &truth,
            &platform,
            &config(shards, OrderingMode::Online),
        );
        assert!(
            online.result.num_crowdsourced() <= likelihood.result.num_crowdsourced(),
            "online asked {} > likelihood {} at {shards} shard(s)",
            online.result.num_crowdsourced(),
            likelihood.result.num_crowdsourced()
        );
    }
}

// ===== Ablation: exact expected cost of the adaptive online ranker =====

/// Crowdsourced-question count of one labeler run inside one world: the
/// labeler publishes batches, the world answers them, repeat to completion.
/// This is exactly the engine's round protocol, so the measured cost is the
/// policy *as deployed* (batch-granular), not the sequential ideal.
fn cost_in_world(
    num_objects: usize,
    order: &[ScoredPair],
    mode: OrderingMode,
    we: &WorldEnumeration,
    world_labels: &[Label],
) -> usize {
    let label_of = |pair: Pair| -> Label {
        let idx = we
            .pairs()
            .iter()
            .position(|sp| sp.pair == pair)
            .expect("published pair must be in the instance");
        world_labels[idx]
    };
    let mut labeler = ShardLabeler::with_ordering(num_objects, order.to_vec(), mode);
    let mut asked = 0usize;
    while !labeler.is_complete() {
        let batch = labeler.next_batch();
        assert!(!batch.is_empty(), "incomplete labeler must publish something");
        for sp in batch {
            asked += 1;
            labeler.submit_answer(sp.pair, label_of(sp.pair));
        }
    }
    asked
}

/// Exact expected crowdsourced-question count of a policy on a small
/// instance: run the labeler in every consistent world, weight by world
/// probability. Reuses `core::expected`'s enumeration, so adaptive
/// policies (online) are measured exactly, not sampled.
///
/// Static policies (`Likelihood`, `Exact`) are prepared once up front and
/// replayed through the identity scan — `prepare` is deterministic, and
/// hoisting it keeps the exact policy's enumeration search out of the
/// per-world loop.
fn expected_policy_cost(num_objects: usize, order: &[ScoredPair], mode: OrderingMode) -> f64 {
    let we = WorldEnumeration::new(num_objects, order).expect("instance fits enumeration");
    let (order, mode) = if mode.policy().online() {
        (order.to_vec(), mode)
    } else {
        (mode.policy().prepare(num_objects, order.to_vec()), OrderingMode::Likelihood)
    };
    we.worlds()
        .iter()
        .map(|w| w.probability * cost_in_world(num_objects, &order, mode, &we, &w.labels) as f64)
        .sum()
}

/// Random connected-ish instance: `n` objects, each of the C(n,2) pairs
/// kept with probability ~1/2 (capped at `max_pairs`), likelihoods in
/// (0.05, 0.95), returned in likelihood-descending order as the engine
/// would receive them.
fn random_instance(rng: &mut SplitMix64, n: u32, max_pairs: usize) -> Vec<ScoredPair> {
    let mut pairs = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.next_u64().is_multiple_of(2) && pairs.len() < max_pairs {
                pairs.push(ScoredPair::new(Pair::new(i, j), 0.05 + 0.9 * rng.next_f64()));
            }
        }
    }
    pairs.sort_by(|a, b| b.likelihood.total_cmp(&a.likelihood));
    pairs
}

/// The pinned ablation factor: across the paper's Example 4 triangle and
/// 40 random ≤16-pair instances, the online ranker's exact expected cost
/// never exceeds 1.25× the exact policy's. The slack absorbs the two ways
/// online can legitimately trail exact: it pays for round-0 questions
/// before any structure exists, and past `EXACT_ORDER_MAX_PAIRS` the two
/// policies optimize different things. Measured headroom on this seed is
/// well under 1.1×; 1.25 keeps the pin insensitive to float jitter.
const ABLATION_FACTOR: f64 = 1.25;

#[test]
fn online_expected_cost_is_within_factor_of_exact() {
    // The paper's Example 4: likelihoods 0.9 / 0.5 / 0.1 on a triangle.
    let example4 = vec![
        ScoredPair::new(Pair::new(0, 1), 0.9),
        ScoredPair::new(Pair::new(1, 2), 0.5),
        ScoredPair::new(Pair::new(0, 2), 0.1),
    ];
    let mut instances: Vec<(usize, Vec<ScoredPair>)> = vec![(3, example4)];

    let mut rng = SplitMix64::new(911);
    while instances.len() < 36 {
        // Mostly small instances (the exact policy truly optimizes there),
        // plus some past the exact optimizer's 12-pair ceiling to pin the
        // fallback behavior too.
        let n = 4 + (rng.next_u64() % 4) as u32; // 4..=7 objects
        let max_pairs = if instances.len() % 6 == 5 { 16 } else { 10 };
        let pairs = random_instance(&mut rng, n, max_pairs);
        if pairs.len() >= 3 {
            instances.push((n as usize, pairs));
        }
    }

    let mut worst: f64 = 0.0;
    for (i, (num_objects, order)) in instances.iter().enumerate() {
        let exact = expected_policy_cost(*num_objects, order, OrderingMode::Exact);
        let online = expected_policy_cost(*num_objects, order, OrderingMode::Online);
        assert!(exact > 0.0, "instance {i}: non-empty instance has positive cost");
        let ratio = online / exact;
        worst = worst.max(ratio);
        assert!(
            online <= ABLATION_FACTOR * exact + 1e-9,
            "instance {i} ({} pairs): online expected cost {online:.4} exceeds \
             {ABLATION_FACTOR} x exact {exact:.4}",
            order.len()
        );
    }
    // The pin must actually have headroom — if the worst ratio creeps past
    // ~1.1 the ranker regressed even though the hard bound still holds.
    assert!(worst < 1.15, "worst online/exact ratio {worst:.4} is drifting toward the bound");
}
