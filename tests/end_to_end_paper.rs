//! End-to-end integration: Cora-style self-join through the whole stack
//! (records → matcher → framework) with a perfect crowd.

use crowdjoin::matcher::MatcherConfig;
use crowdjoin::records::{generate_paper, ClusterSpec, PaperGenConfig, PerturbConfig};
use crowdjoin::{
    build_task, optimal_cost, run_parallel_rounds, sort_pairs, GroundTruthOracle, QualityMetrics,
    SortStrategy,
};

fn dataset() -> crowdjoin::records::Dataset {
    generate_paper(&PaperGenConfig {
        num_records: 200,
        clusters: ClusterSpec::PowerLaw { alpha: 1.9, max_size: 30, force_max: true },
        perturb: PerturbConfig::heavy(),
        sibling_probability: 0.3,
        seed: 2024,
    })
}

#[test]
fn perfect_crowd_reproduces_ground_truth_under_every_order() {
    let ds = dataset();
    let (task, truth) = build_task(&ds, &MatcherConfig::for_arity(5), 0.3);
    assert!(task.candidates().len() > 100, "matcher found too few candidates");

    for strategy in [
        SortStrategy::Optimal(&truth),
        SortStrategy::ExpectedLikelihood,
        SortStrategy::Random { seed: 9 },
        SortStrategy::Worst(&truth),
    ] {
        let mut crowd = GroundTruthOracle::new(&truth);
        let result = task.run_sequential(strategy, &mut crowd);
        assert_eq!(result.num_labeled(), task.candidates().len());
        let q = QualityMetrics::of_result(&result, &truth);
        assert_eq!(q.precision(), 1.0, "order {}", strategy.name());
        assert_eq!(q.recall(), 1.0, "order {}", strategy.name());
    }
}

#[test]
fn optimal_order_matches_closed_form_at_scale() {
    let ds = dataset();
    let (task, truth) = build_task(&ds, &MatcherConfig::for_arity(5), 0.2);
    let closed = optimal_cost(task.candidates(), &truth).total();
    let mut crowd = GroundTruthOracle::new(&truth);
    let result = task.run_sequential(SortStrategy::Optimal(&truth), &mut crowd);
    assert_eq!(result.num_crowdsourced(), closed);
}

#[test]
fn order_hierarchy_holds() {
    // optimal <= expected <= worst on a realistic workload (the expected
    // order is a heuristic, but the matcher's signal is informative here).
    let ds = dataset();
    let (task, truth) = build_task(&ds, &MatcherConfig::for_arity(5), 0.3);
    let cost = |strategy| {
        let mut crowd = GroundTruthOracle::new(&truth);
        task.run_sequential(strategy, &mut crowd).num_crowdsourced()
    };
    let optimal = cost(SortStrategy::Optimal(&truth));
    let expected = cost(SortStrategy::ExpectedLikelihood);
    let worst = cost(SortStrategy::Worst(&truth));
    assert!(optimal <= expected, "{optimal} > {expected}");
    assert!(expected <= worst, "{expected} > {worst}");
    assert!(
        worst > optimal,
        "worst ({worst}) should strictly exceed optimal ({optimal}) on this workload"
    );
}

#[test]
fn transitivity_saves_most_pairs_on_heavy_tail_data() {
    let ds = dataset();
    let (task, truth) = build_task(&ds, &MatcherConfig::for_arity(5), 0.3);
    let mut crowd = GroundTruthOracle::new(&truth);
    let result = task.run_sequential(SortStrategy::ExpectedLikelihood, &mut crowd);
    assert!(
        result.savings_ratio() > 0.5,
        "heavy-tail clusters should save >50%, got {:.1}%",
        result.savings_ratio() * 100.0
    );
}

#[test]
fn parallel_run_agrees_with_sequential_labels() {
    let ds = dataset();
    let (task, truth) = build_task(&ds, &MatcherConfig::for_arity(5), 0.3);
    let order = sort_pairs(task.candidates(), SortStrategy::ExpectedLikelihood);
    let mut crowd = GroundTruthOracle::new(&truth);
    let (par, stats) = run_parallel_rounds(task.candidates().num_objects(), order, &mut crowd);
    assert_eq!(par.num_labeled(), task.candidates().len());
    assert!(stats.num_iterations() < 40, "too many iterations: {}", stats.num_iterations());
    for sp in task.candidates().pairs() {
        assert_eq!(par.label_of(sp.pair), Some(truth.label_of(sp.pair)));
    }
}

#[test]
fn threshold_sweep_is_monotone_in_candidates() {
    let ds = dataset();
    let (task01, _) = build_task(&ds, &MatcherConfig::for_arity(5), 0.1);
    let (task03, _) = build_task(&ds, &MatcherConfig::for_arity(5), 0.3);
    let (task05, _) = build_task(&ds, &MatcherConfig::for_arity(5), 0.5);
    assert!(task01.candidates().len() >= task03.candidates().len());
    assert!(task03.candidates().len() >= task05.candidates().len());
}
