//! Deduplicating a bibliography: the full hybrid human–machine pipeline on a
//! Cora-style publication dataset with heavy-tail duplicate clusters.
//!
//! Walks the whole stack end to end:
//! 1. generate a dirty publication table (duplicates are typo'd,
//!    abbreviated, reordered variants of a canonical record),
//! 2. machine stage: tf-idf + Jaccard similarity join produces scored
//!    candidate pairs,
//! 3. crowd stage: the transitive labeling framework labels all candidates
//!    while crowdsourcing only a spanning core,
//! 4. compare labeling orders and report savings and quality.
//!
//! ```bash
//! cargo run --release -p crowdjoin --example publication_dedup
//! ```

use crowdjoin::matcher::MatcherConfig;
use crowdjoin::records::{generate_paper, ClusterSpec, PaperGenConfig, PerturbConfig};
use crowdjoin::{build_task, optimal_cost, GroundTruthOracle, QualityMetrics, SortStrategy};

fn main() {
    // A 300-record bibliography with one 40-duplicate cluster and a spread
    // of smaller ones — a miniature Cora.
    let dataset = generate_paper(&PaperGenConfig {
        num_records: 300,
        clusters: ClusterSpec::PowerLaw { alpha: 1.9, max_size: 40, force_max: true },
        perturb: PerturbConfig::heavy(),
        sibling_probability: 0.3,
        seed: 7,
    });
    println!(
        "dataset: {} records, {} true duplicate pairs, largest cluster {}",
        dataset.len(),
        crowdjoin::ground_truth_of(&dataset).num_matching_pairs(),
        dataset.cluster_size_histogram().max_bucket().unwrap_or(0),
    );

    // Machine stage + threshold: only pairs the matcher considers plausible
    // go to the crowd.
    let (task, truth) = build_task(&dataset, &MatcherConfig::for_arity(5), 0.3);
    println!(
        "machine stage kept {} candidate pairs (of {} possible)",
        task.candidates().len(),
        dataset.total_join_pairs()
    );
    println!(
        "information-theoretic floor (optimal order): {} crowd answers\n",
        optimal_cost(task.candidates(), &truth).total()
    );

    // Crowd stage under different labeling orders.
    for strategy in [
        SortStrategy::Optimal(&truth),
        SortStrategy::ExpectedLikelihood,
        SortStrategy::Random { seed: 1 },
        SortStrategy::Worst(&truth),
    ] {
        let mut crowd = GroundTruthOracle::new(&truth);
        let result = task.run_sequential(strategy, &mut crowd);
        let quality = QualityMetrics::of_result(&result, &truth);
        println!(
            "{:>9} order: {:>6} crowdsourced, {:>6} deduced ({:>4.1}% saved)  {}",
            strategy.name(),
            result.num_crowdsourced(),
            result.num_deduced(),
            result.savings_ratio() * 100.0,
            quality,
        );
    }

    println!(
        "\n(the 'optimal'/'worst' orders need the true labels upfront — they are the\n\
         experiment bounds; 'expected' = likelihood-descending is what production uses)"
    );
}
