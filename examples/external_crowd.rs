//! Bring your own crowd: drive a labeling job through a spool directory.
//!
//! The engine publishes HITs as JSON files into `<spool>/hits/`; a
//! scripted "crowd" thread (standing in for any external process or
//! human) reads them and writes verdicts into `<spool>/answers/`. The
//! engine side — event loop, transitive deduction, reporting — is exactly
//! the code the simulator path runs; only the backend differs.
//!
//! Run with: `cargo run --example external_crowd`

use crowdjoin::backend_spool::{answer_pending, SpoolConfig, SpoolFactory};
use crowdjoin::sim::{PlatformConfig, SimDuration};
use crowdjoin::{
    sort_pairs, CandidateSet, Engine, EngineConfig, GroundTruth, Pair, ScoredPair, SortStrategy,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn main() {
    // A tiny dedup workload: two entity clusters over six records, eight
    // machine-scored candidate pairs (the paper's running example).
    let truth = GroundTruth::from_clusters(6, &[vec![0, 1, 2], vec![3, 4]]);
    let pairs = vec![
        ScoredPair::new(Pair::new(0, 1), 0.95),
        ScoredPair::new(Pair::new(1, 2), 0.90),
        ScoredPair::new(Pair::new(0, 5), 0.85),
        ScoredPair::new(Pair::new(0, 2), 0.80),
        ScoredPair::new(Pair::new(3, 4), 0.75),
        ScoredPair::new(Pair::new(3, 5), 0.70),
        ScoredPair::new(Pair::new(1, 3), 0.65),
        ScoredPair::new(Pair::new(4, 5), 0.60),
    ];
    let candidates = CandidateSet::new(6, pairs);
    let order = sort_pairs(&candidates, SortStrategy::ExpectedLikelihood);

    // A temp spool directory; in real use this is a shared path your
    // answering process (or qurk-style HIT poster) watches.
    let spool = std::env::temp_dir().join(format!("crowdjoin-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);
    println!("spool directory: {}", spool.display());

    // Small HITs so the job takes several files; fast polling so the
    // example finishes in milliseconds. Creating the factory also creates
    // the spool's hits/ and answers/ directories — it must exist before the
    // crowd thread starts scanning, or the scan errors out and the engine
    // waits forever.
    let platform = PlatformConfig { batch_size: 3, ..PlatformConfig::perfect_workers(7) };
    let factory = SpoolFactory::new(SpoolConfig {
        poll_interval: SimDuration(5),
        ..SpoolConfig::new(&spool)
    })
    .expect("create spool");

    // The external crowd: a thread that polls hits/ and answers every
    // question by echoing the HIT file's expected answer. Replace the
    // closure with your own logic (or a human prompt) and it is a real
    // crowd.
    let done = Arc::new(AtomicBool::new(false));
    let crowd = {
        let spool = spool.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut total = 0usize;
            while !done.load(Ordering::Relaxed) {
                let n = answer_pending(&spool, |q| {
                    println!("  crowd: record {} vs {} → {}", q.a, q.b, q.truth);
                    q.truth
                })
                .expect("scan spool");
                total += n;
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            total
        })
    };

    let engine =
        Engine::new(candidates.num_objects(), &order, &truth, &platform, EngineConfig::default());
    let report = engine.run_with_backend(&factory).expect("spool run");
    done.store(true, Ordering::Relaxed);
    let hits_answered = crowd.join().expect("crowd thread");

    println!("\nexternal crowd run finished:");
    println!("  HITs answered      {hits_answered}");
    println!(
        "  pairs labeled      {} = {} crowdsourced + {} deduced ({:.0}% saved)",
        report.result.num_labeled(),
        report.num_crowdsourced(),
        report.num_deduced(),
        report.result.savings_ratio() * 100.0
    );
    println!("  cost               ${:.2}", report.total_cost_cents as f64 / 100.0);
    println!("  completion         {:.2} wall-clock seconds", report.completion.0 as f64 / 1000.0);
    assert_eq!(report.result.num_labeled(), candidates.len());
    assert!(report.num_deduced() > 0, "transitivity saved questions");

    let _ = std::fs::remove_dir_all(&spool);
}
