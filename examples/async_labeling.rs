//! Driving the labeling framework from a separate thread over channels —
//! the shape a real AMT integration takes, where crowd answers arrive
//! asynchronously and the labeler must decide *instantly* which pairs to
//! publish next (the paper's instant-decision optimization).
//!
//! A "platform" thread simulates workers answering HITs and streams answers
//! back over a crossbeam channel; the main thread owns the
//! [`ParallelLabeler`] state machine, feeds answers in as they arrive, and
//! pushes newly publishable pairs out.
//!
//! ```bash
//! cargo run --release -p crowdjoin --example async_labeling
//! ```

use crossbeam::channel;
use crowdjoin::{
    CandidateSet, GroundTruth, Label, Pair, ParallelLabeler, ScoredPair, SortStrategy,
};
use std::thread;

/// Messages to the platform thread: pairs to publish (with their truth, so
/// the fake crowd can answer).
struct PublishRequest {
    pair: Pair,
    truth: Label,
}

fn main() {
    // A chain of 30 objects in one entity cluster plus distractors: the
    // candidate graph is a long path, so everything can be published in one
    // wave (Section 5.1's motivating case).
    let n = 40u32;
    let truth = GroundTruth::from_clusters(n as usize, &[(0..30).collect()]);
    let mut pairs = Vec::new();
    for i in 0..29u32 {
        pairs.push(ScoredPair::new(Pair::new(i, i + 1), 0.9 - i as f64 * 0.01));
    }
    for i in 30..n - 1 {
        pairs.push(ScoredPair::new(Pair::new(i, i + 1), 0.3));
    }
    let candidates = CandidateSet::new(n as usize, pairs);
    let order = crowdjoin::sort_pairs(&candidates, SortStrategy::ExpectedLikelihood);

    let (publish_tx, publish_rx) = channel::unbounded::<PublishRequest>();
    let (answer_tx, answer_rx) = channel::unbounded::<(Pair, Label)>();

    // Platform thread: answers each published pair after a tiny delay.
    let platform = thread::spawn(move || {
        let mut answered = 0usize;
        while let Ok(req) = publish_rx.recv() {
            thread::sleep(std::time::Duration::from_millis(1));
            if answer_tx.send((req.pair, req.truth)).is_err() {
                break;
            }
            answered += 1;
        }
        answered
    });

    // Labeler loop: publish what must be crowdsourced, ingest answers as
    // they arrive, publish any newly necessary pairs immediately.
    let mut labeler = ParallelLabeler::new(n as usize, order);
    let mut published = 0usize;
    let initial = labeler.next_batch();
    println!("first wave: publishing {} of {} pairs", initial.len(), candidates.len());
    for sp in initial {
        published += 1;
        publish_tx
            .send(PublishRequest { pair: sp.pair, truth: truth.label_of(sp.pair) })
            .expect("platform thread alive");
    }

    while !labeler.is_complete() {
        let (pair, label) = answer_rx.recv().expect("answers keep flowing");
        labeler.submit_answer(pair, label);
        // Instant decision: anything that just became provably necessary
        // goes out without waiting for the rest of the wave.
        for sp in labeler.next_batch() {
            published += 1;
            publish_tx
                .send(PublishRequest { pair: sp.pair, truth: truth.label_of(sp.pair) })
                .expect("platform thread alive");
        }
    }
    drop(publish_tx);
    let answered = platform.join().expect("platform thread exits cleanly");

    let result = labeler.into_result();
    println!(
        "done: {} pairs labeled, {} crowdsourced ({} published, {} answered), {} deduced",
        result.num_labeled(),
        result.num_crowdsourced(),
        published,
        answered,
        result.num_deduced()
    );
    assert_eq!(result.num_crowdsourced(), published);
    for sp in candidates.pairs() {
        assert_eq!(result.label_of(sp.pair), Some(truth.label_of(sp.pair)));
    }
    println!("all labels verified against ground truth");
}
