//! Quickstart: deduplicate a tiny product list with a crowd you only have to
//! pay for six answers.
//!
//! This is the paper's running example (Figure 3): eight candidate pairs over
//! six records, of which two labels come for free via transitive relations.
//!
//! ```bash
//! cargo run -p crowdjoin --example quickstart
//! ```

use crowdjoin::{
    CandidateSet, GroundTruth, GroundTruthOracle, LabelingTask, Pair, Provenance, ScoredPair,
    SortStrategy,
};

fn main() {
    // Six product records; records 0–2 are one real-world entity
    // ("iPad 2nd Gen" / "iPad Two" / "iPad 2"), records 3–4 another.
    let names = [
        "iPad 2nd Gen",   // o1
        "iPad Two",       // o2
        "iPad 2",         // o3
        "iPhone 4th Gen", // o4
        "iPhone Four",    // o5
        "iPad 3",         // o6
    ];
    let truth = GroundTruth::from_clusters(6, &[vec![0, 1, 2], vec![3, 4]]);

    // The machine matcher scored these eight pairs as possible matches
    // (everything else was pruned as obviously different).
    let candidates = CandidateSet::new(
        6,
        vec![
            ScoredPair::new(Pair::new(0, 1), 0.95),
            ScoredPair::new(Pair::new(1, 2), 0.90),
            ScoredPair::new(Pair::new(0, 5), 0.85),
            ScoredPair::new(Pair::new(0, 2), 0.80),
            ScoredPair::new(Pair::new(3, 4), 0.75),
            ScoredPair::new(Pair::new(3, 5), 0.70),
            ScoredPair::new(Pair::new(1, 3), 0.65),
            ScoredPair::new(Pair::new(4, 5), 0.60),
        ],
    );

    // Label them in decreasing likelihood, deducing what transitivity gives
    // us for free. The oracle stands in for your crowd platform.
    let task = LabelingTask::new(candidates);
    let mut crowd = GroundTruthOracle::new(&truth);
    let result = task.run_sequential(SortStrategy::ExpectedLikelihood, &mut crowd);

    println!("labeled {} candidate pairs:", result.num_labeled());
    for lp in result.labeled_pairs() {
        let (a, b) = (lp.pair.a() as usize, lp.pair.b() as usize);
        println!(
            "  {:28} -> {:12} [{}]",
            format!("{:?} vs {:?}", names[a], names[b]),
            lp.label.to_string(),
            match lp.provenance {
                Provenance::Crowdsourced => "crowd  (paid)",
                Provenance::Deduced => "deduced (free)",
            }
        );
    }
    println!(
        "\ncrowd answers paid for: {} of {} ({}% saved)",
        result.num_crowdsourced(),
        result.num_labeled(),
        (result.savings_ratio() * 100.0).round()
    );

    assert_eq!(result.num_crowdsourced(), 6, "the paper's optimal for this instance");
}
