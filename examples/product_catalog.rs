//! Joining two retailer catalogs on a simulated crowdsourcing platform —
//! the Abt-Buy scenario from the paper's introduction: two collections of
//! product records, where "iPad 2nd Gen" on one site and "iPad Two" on the
//! other are the same product.
//!
//! Unlike `publication_dedup` this drives a full discrete-event crowd
//! platform (HIT batching, three assignments per HIT, majority vote, noisy
//! workers, qualification tests) and compares the transitive parallel
//! labeler against the publish-everything baseline on money, time, and
//! quality.
//!
//! ```bash
//! cargo run --release -p crowdjoin --example product_catalog
//! ```

use crowdjoin::matcher::MatcherConfig;
use crowdjoin::records::{generate_product, ClusterSpec, PerturbConfig, ProductGenConfig};
use crowdjoin::sim::{Platform, PlatformConfig};
use crowdjoin::{
    ground_truth_of, run_non_transitive_on_platform, run_parallel_on_platform, sort_pairs,
    to_candidate_set, QualityMetrics, SortStrategy,
};

fn main() {
    // Two catalogs of ~400 products each; most matched products appear once
    // per site, and a solid tail of multi-listing products (sizes 3-5)
    // gives transitivity something to deduce.
    let dataset = generate_product(&ProductGenConfig {
        table_a: 400,
        table_b: 410,
        clusters: ClusterSpec::Explicit(vec![(2, 150), (3, 90), (4, 40), (5, 14)]),
        perturb: PerturbConfig::heavy(),
        seed: 99,
    });
    println!(
        "catalogs: {} x {} records, cross join of {} pairs",
        400,
        410,
        dataset.total_join_pairs()
    );

    let matcher = MatcherConfig { field_weights: vec![1.0, 0.25], ..MatcherConfig::for_arity(2) };
    let raw = crowdjoin::matcher::generate_candidates(&dataset, &matcher);
    let candidates = to_candidate_set(&dataset, &raw).above_threshold(0.2);
    let truth = ground_truth_of(&dataset);
    println!("machine stage kept {} candidate pairs at threshold 0.2\n", candidates.len());

    let order = sort_pairs(&candidates, SortStrategy::ExpectedLikelihood);

    // Arm 1: prior work — publish every candidate pair.
    let mut p1 = Platform::new(PlatformConfig::amt_like(5));
    let baseline = run_non_transitive_on_platform(candidates.pairs(), &truth, &mut p1);
    let q1 = QualityMetrics::of_result(&baseline.result, &truth);

    // Arm 2: transitive parallel labeling with instant decision.
    let mut p2 = Platform::new(PlatformConfig::amt_like(5));
    let transitive =
        run_parallel_on_platform(candidates.num_objects(), order, &truth, &mut p2, true);
    let q2 = QualityMetrics::of_result(&transitive.result, &truth);

    println!("                 |    HITs |    cost | completion | quality");
    println!(
        "non-transitive   | {:>7} | {:>6}¢ | {:>9.1}h | {}",
        baseline.stats.hits_published,
        baseline.stats.total_cost_cents,
        baseline.completion.as_hours(),
        q1
    );
    println!(
        "transitive (par) | {:>7} | {:>6}¢ | {:>9.1}h | {}",
        transitive.stats.hits_published,
        transitive.stats.total_cost_cents,
        transitive.completion.as_hours(),
        q2
    );
    println!(
        "\ntransitive labeling crowdsourced {} pairs and deduced {} for free \
         ({} majority-vote conflicts resolved by deduction)",
        transitive.result.num_crowdsourced(),
        transitive.result.num_deduced(),
        transitive.result.num_conflicts()
    );
}
